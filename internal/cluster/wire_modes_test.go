package cluster

import (
	"context"
	"fmt"
	"math"
	"testing"

	"bandjoin/internal/core"
	"bandjoin/internal/data"
)

// decimalPair returns a Pareto pair with keys quantized to three decimals —
// the fixed-precision shape (PTF-style) the columnar delta+varint encodings
// are built for. Full-entropy float64 mantissas are incompressible by design.
func decimalPair(dims, n int, seed int64) (*data.Relation, *data.Relation) {
	s, t := data.ParetoPair(dims, 1.4, n, seed)
	quantize := func(r *data.Relation) *data.Relation {
		q := data.NewRelationCapacity(r.Name(), r.Dims(), r.Len())
		k := make([]float64, r.Dims())
		for i := 0; i < r.Len(); i++ {
			copy(k, r.Key(i))
			for d := range k {
				k[d] = math.Round(k[d]*1000) / 1000
			}
			q.AppendKey(k)
		}
		return q
	}
	return quantize(s), quantize(t)
}

// workerLoadTotals sums the Load-path byte counters across a local cluster's
// workers straight from their metrics.
func workerLoadTotals(lc *LocalCluster) (wire, raw, preps int64) {
	for _, w := range lc.Handles() {
		wire += w.m.loadBytes.Value()
		raw += w.m.loadRawBytes.Value()
		preps += w.m.pipelinedPreps.Value()
	}
	return
}

// TestCompressionModesMatchOracle runs the same plan under every wire mode and
// requires bit-identical pairs, with "off" (the v1 packed plane) as the
// equivalence oracle. On decimal data the compressed modes must also move
// measurably fewer payload bytes than the raw row-major footprint, and the
// streaming plane must report the pipelined background preparations.
func TestCompressionModesMatchOracle(t *testing.T) {
	s, tt := decimalPair(3, 900, 41)
	band := data.Symmetric(0.05, 0.05, 0.05)

	lc, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	oracle, err := coord.Run(context.Background(), core.NewRecPartS(),
		s, tt, band, Options{CollectPairs: true, Seed: 7, ChunkSize: 128, Compression: "off"})
	if err != nil {
		t.Fatalf("oracle run (off): %v", err)
	}
	if len(oracle.Pairs) == 0 {
		t.Fatal("oracle produced no pairs")
	}
	if oracle.ShuffleRawBytes == 0 {
		t.Error("off mode reported zero ShuffleRawBytes; raw accounting must cover the v1 plane too")
	}

	for _, mode := range []string{"", "auto", "delta", "lz4"} {
		t.Run("mode="+mode, func(t *testing.T) {
			wireBefore, rawBefore, _ := workerLoadTotals(lc)
			res, err := coord.Run(context.Background(), core.NewRecPartS(),
				s, tt, band, Options{CollectPairs: true, Seed: 7, ChunkSize: 128, Compression: mode})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			samePairs(t, "mode "+mode+" vs off", res.Pairs, oracle.Pairs)
			if res.ShuffleRawBytes != oracle.ShuffleRawBytes {
				t.Errorf("ShuffleRawBytes = %d, want %d (raw accounting is payload-independent)",
					res.ShuffleRawBytes, oracle.ShuffleRawBytes)
			}
			wireAfter, rawAfter, preps := workerLoadTotals(lc)
			gotWire, gotRaw := wireAfter-wireBefore, rawAfter-rawBefore
			if gotRaw != res.ShuffleRawBytes {
				t.Errorf("workers decoded %d raw bytes, coordinator shipped %d", gotRaw, res.ShuffleRawBytes)
			}
			if 2*gotWire >= gotRaw {
				t.Errorf("mode %q moved %d payload bytes for %d raw bytes; want at least 2x compression on decimal data",
					mode, gotWire, gotRaw)
			}
			if preps == 0 {
				t.Error("no pipelined background preparations ran on a streaming transient run")
			}
		})
	}

	if _, err := coord.Run(context.Background(), core.NewRecPartS(),
		s, tt, band, Options{Compression: "zstd"}); err == nil {
		t.Fatal("unknown compression mode was accepted")
	}
}

// TestWireVersionNegotiationFallback forces workers to advertise the v1 wire
// format: the coordinator must fall back to packed chunks per connection (no
// columnar decoding on the worker) and still produce the oracle's pairs. A
// mixed cluster — one old worker among new ones — must also work.
func TestWireVersionNegotiationFallback(t *testing.T) {
	s, tt := decimalPair(2, 700, 43)
	band := data.Symmetric(0.05, 0.05)

	setup := func(t *testing.T, oldWorkers ...int) (*LocalCluster, *Coordinator) {
		lc, err := StartLocal(3)
		if err != nil {
			t.Fatalf("StartLocal: %v", err)
		}
		t.Cleanup(lc.Stop)
		for _, i := range oldWorkers {
			lc.Handles()[i].SetWireVersion(0)
		}
		coord, err := Dial(lc.Addrs())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		t.Cleanup(coord.Close)
		return lc, coord
	}

	lcNew, coordNew := setup(t)
	oracle, err := coordNew.Run(context.Background(), core.NewRecPartS(),
		s, tt, band, Options{CollectPairs: true, Seed: 3, ChunkSize: 128})
	if err != nil {
		t.Fatalf("v2 run: %v", err)
	}
	if decoded := decodeNanos(lcNew); decoded == 0 {
		t.Error("v2 cluster decoded no columnar chunks")
	}

	cases := []struct {
		name string
		old  []int
	}{
		{"all-v1", []int{0, 1, 2}},
		{"mixed", []int{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lc, coord := setup(t, tc.old...)
			res, err := coord.Run(context.Background(), core.NewRecPartS(),
				s, tt, band, Options{CollectPairs: true, Seed: 3, ChunkSize: 128})
			if err != nil {
				t.Fatalf("run against v1 workers: %v", err)
			}
			samePairs(t, tc.name+" vs v2", res.Pairs, oracle.Pairs)
			for _, i := range tc.old {
				if n := lc.Handles()[i].m.decodeSeconds.Sum(); n != 0 {
					t.Errorf("v1 worker %d decoded columnar chunks (%.9fs); negotiation did not fall back", i, n)
				}
			}
			if res.ShuffleRawBytes == 0 {
				t.Error("fallback run reported zero ShuffleRawBytes")
			}
		})
	}
}

func decodeNanos(lc *LocalCluster) (total int64) {
	for _, w := range lc.Handles() {
		total += int64(w.m.decodeSeconds.Sum() * 1e9)
	}
	return
}

// TestCompressedDeltaAppendMatchesUncompressed ships a retained plan from base
// prefixes and absorbs the appended suffix under compressed and uncompressed
// wire modes: the warm results must be bit-identical, and both warm runs must
// move zero bytes.
func TestCompressedDeltaAppendMatchesUncompressed(t *testing.T) {
	fullS, fullT := decimalPair(2, 800, 47)
	band := data.Symmetric(0.05, 0.05)
	baseS, baseT := extendPair(fullS, fullT, 550, 600)

	lc, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	plan, pctx := retainPlanFor(t, core.NewRecPartS(), baseS, baseT, band, 3)
	type outcome struct {
		output int64
		pairs  []string
	}
	outcomes := make(map[string]outcome)
	for _, mode := range []string{"off", "auto"} {
		opts := Options{PlanID: "delta-comp-" + mode, CollectPairs: true, ChunkSize: 128, Compression: mode}
		if _, err := coord.RunPlan(context.Background(), plan, pctx, baseS, baseT, band, opts); err != nil {
			t.Fatalf("cold RunPlan (%s): %v", mode, err)
		}
		if err := coord.AbsorbPlan(context.Background(), plan, pctx, fullS, fullT, opts); err != nil {
			t.Fatalf("AbsorbPlan (%s): %v", mode, err)
		}
		warm, err := coord.RunPlan(context.Background(), plan, pctx, fullS, fullT, band, opts)
		if err != nil {
			t.Fatalf("warm RunPlan (%s): %v", mode, err)
		}
		if warm.ShuffleBytes != 0 || warm.ShuffleRPCs != 0 {
			t.Errorf("warm run (%s) shuffled bytes=%d rpcs=%d, want 0/0", mode, warm.ShuffleBytes, warm.ShuffleRPCs)
		}
		pairs := make([]string, len(warm.Pairs))
		for i, p := range warm.Pairs {
			pairs[i] = fmt.Sprintf("%d|%d", p.S, p.T)
		}
		outcomes[mode] = outcome{output: warm.Output, pairs: pairs}
	}
	off, auto := outcomes["off"], outcomes["auto"]
	if off.output != auto.output {
		t.Fatalf("warm output differs: off=%d auto=%d", off.output, auto.output)
	}
	if len(off.pairs) != len(auto.pairs) {
		t.Fatalf("warm pair count differs: off=%d auto=%d", len(off.pairs), len(auto.pairs))
	}
	for i := range off.pairs {
		if off.pairs[i] != auto.pairs[i] {
			t.Fatalf("warm pair %d differs: off=%s auto=%s", i, off.pairs[i], auto.pairs[i])
		}
	}
}
