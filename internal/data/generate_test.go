package data

import (
	"math"
	"math/rand"
	"testing"
)

func TestParetoGenProperties(t *testing.T) {
	g := NewPareto(3, 1.5)
	if g.Dims() != 3 {
		t.Fatalf("Dims = %d", g.Dims())
	}
	r := g.Generate("p", 5000, rand.New(rand.NewSource(1)))
	if r.Len() != 5000 {
		t.Fatalf("Len = %d", r.Len())
	}
	below2 := 0
	for i := 0; i < r.Len(); i++ {
		k := r.Key(i)
		for d, v := range k {
			if v < 1 {
				t.Fatalf("Pareto value %g below the domain minimum (dim %d)", v, d)
			}
		}
		if k[0] < 2 {
			below2++
		}
	}
	// P(X < 2) = 1 - 2^-1.5 ≈ 0.65 for z = 1.5; allow wide tolerance.
	frac := float64(below2) / float64(r.Len())
	if frac < 0.5 || frac > 0.8 {
		t.Errorf("Pareto(1.5) mass below 2 = %.2f, expected ≈ 0.65", frac)
	}
}

func TestParetoSkewOrdering(t *testing.T) {
	// Larger z concentrates more mass near the domain minimum.
	fracBelow := func(z float64) float64 {
		g := NewPareto(1, z)
		r := g.Generate("p", 4000, rand.New(rand.NewSource(2)))
		n := 0
		for i := 0; i < r.Len(); i++ {
			if r.Key(i)[0] < 1.5 {
				n++
			}
		}
		return float64(n) / float64(r.Len())
	}
	if !(fracBelow(2.0) > fracBelow(1.0) && fracBelow(1.0) > fracBelow(0.5)) {
		t.Error("Pareto mass near the minimum does not increase with z")
	}
}

func TestReverseParetoMirrorsPareto(t *testing.T) {
	g := NewReversePareto(2, 1.5)
	r := g.Generate("rp", 2000, rand.New(rand.NewSource(3)))
	for i := 0; i < r.Len(); i++ {
		for _, v := range r.Key(i) {
			if v >= 1e6 {
				t.Fatalf("reverse Pareto value %g not below the pivot", v)
			}
		}
	}
	// Most mass should be just below the pivot.
	near := 0
	for i := 0; i < r.Len(); i++ {
		if r.Key(i)[0] > 1e6-3 {
			near++
		}
	}
	if float64(near)/float64(r.Len()) < 0.5 {
		t.Errorf("only %d/%d reverse-Pareto values near the pivot", near, r.Len())
	}
}

func TestUniformGenBounds(t *testing.T) {
	g := NewUniform([]float64{-1, 10}, []float64{1, 20})
	r := g.Generate("u", 3000, rand.New(rand.NewSource(4)))
	for i := 0; i < r.Len(); i++ {
		k := r.Key(i)
		if k[0] < -1 || k[0] >= 1 || k[1] < 10 || k[1] >= 20 {
			t.Fatalf("uniform value %v outside bounds", k)
		}
	}
	if g.String() == "" || g.Dims() != 2 {
		t.Error("metadata accessors wrong")
	}
}

func TestClusteredSurrogatesAreCorrelatedAndBounded(t *testing.T) {
	eb := EBirdSurrogate(5)
	cl := CloudSurrogate(5)
	be := eb.Generate("ebird", 4000, rand.New(rand.NewSource(6)))
	we := cl.Generate("cloud", 4000, rand.New(rand.NewSource(7)))
	for _, r := range []*Relation{be, we} {
		for i := 0; i < r.Len(); i++ {
			k := r.Key(i)
			if k[0] < 10000 || k[0] > 16000 || k[1] < -90 || k[1] > 90 || k[2] < -180 || k[2] > 180 {
				t.Fatalf("surrogate value %v outside the spatio-temporal domain", k)
			}
		}
	}
	// The clustered data must be much more concentrated than uniform: the
	// densest 1-degree latitude cell should hold several percent of tuples.
	hist := make(map[int]int)
	for i := 0; i < be.Len(); i++ {
		hist[int(math.Floor(be.Key(i)[1]))]++
	}
	max := 0
	for _, c := range hist {
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(be.Len()) < 0.03 {
		t.Errorf("ebird surrogate looks uniform: densest latitude bin holds only %.1f%%", 100*float64(max)/float64(be.Len()))
	}
}

func TestPTFPairIsSelfJoin(t *testing.T) {
	s, tt := PTFPair(1000, 9)
	if s.Len() != 1000 || tt.Len() != 1000 {
		t.Fatalf("sizes %d/%d", s.Len(), tt.Len())
	}
	for i := 0; i < s.Len(); i++ {
		a, b := s.Key(i), tt.Key(i)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatal("PTF pair is not a self-join copy")
		}
	}
	// Repeat observations: a tiny band width already matches more than just
	// the identity pairs.
	band := Symmetric(1.0/3600, 1.0/3600)
	matches := 0
	for i := 0; i < 200; i++ {
		for j := 0; j < s.Len(); j++ {
			if i != j && band.Matches(s.Key(i), tt.Key(j)) {
				matches++
			}
		}
	}
	if matches == 0 {
		t.Error("PTF surrogate has no repeat observations within one arcsecond")
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	a1, b1 := ParetoPair(3, 1.5, 500, 42)
	a2, b2 := ParetoPair(3, 1.5, 500, 42)
	for i := 0; i < a1.Len(); i++ {
		for d := 0; d < 3; d++ {
			if a1.Key(i)[d] != a2.Key(i)[d] || b1.Key(i)[d] != b2.Key(i)[d] {
				t.Fatal("ParetoPair is not deterministic for a fixed seed")
			}
		}
	}
}

func TestPairConstructors(t *testing.T) {
	s, tt := ReverseParetoPair(2, 1.0, 300, 1)
	if s.Len() != 300 || tt.Len() != 300 || s.Dims() != 2 {
		t.Error("ReverseParetoPair sizes wrong")
	}
	s, tt = EBirdCloudPair(200, 100, 1)
	if s.Len() != 200 || tt.Len() != 100 || s.Dims() != 3 {
		t.Error("EBirdCloudPair sizes wrong")
	}
}
