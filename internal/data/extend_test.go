package data

import "testing"

func TestExtendAppendsWithoutMutatingSnapshot(t *testing.T) {
	base := NewRelation("r", 2)
	for i := 0; i < 10; i++ {
		base.Append(float64(i), float64(-i))
	}
	delta := NewRelation("d", 2)
	delta.Append(100, -100)
	delta.Append(101, -101)

	ext := base.Extend(delta)
	if base.Len() != 10 {
		t.Fatalf("snapshot length changed to %d after Extend", base.Len())
	}
	if ext.Len() != 12 {
		t.Fatalf("extended length = %d, want 12", ext.Len())
	}
	if ext.Name() != base.Name() || ext.Dims() != base.Dims() {
		t.Errorf("extended identity (%q, %dD) differs from base (%q, %dD)",
			ext.Name(), ext.Dims(), base.Name(), base.Dims())
	}
	for i := 0; i < 10; i++ {
		if ext.KeyAt(i, 0) != float64(i) || ext.KeyAt(i, 1) != float64(-i) {
			t.Fatalf("base row %d corrupted: %v", i, ext.Key(i))
		}
	}
	if ext.KeyAt(10, 0) != 100 || ext.KeyAt(11, 0) != 101 {
		t.Errorf("delta rows = %v, %v, want [100 -100], [101 -101]", ext.Key(10), ext.Key(11))
	}
}

// TestExtendChainSharesPrefix: a chain of Extends must keep every intermediate
// snapshot readable — an in-place extension writes only past the snapshot's
// length, never into it.
func TestExtendChainSharesPrefix(t *testing.T) {
	head := NewRelation("r", 1)
	head.Append(0)
	snapshots := []*Relation{head}
	for g := 1; g <= 20; g++ {
		delta := NewRelation("d", 1)
		delta.Append(float64(g))
		head = head.Extend(delta)
		snapshots = append(snapshots, head)
	}
	for g, snap := range snapshots {
		if snap.Len() != g+1 {
			t.Fatalf("snapshot %d has length %d, want %d", g, snap.Len(), g+1)
		}
		for i := 0; i <= g; i++ {
			if snap.KeyAt(i, 0) != float64(i) {
				t.Fatalf("snapshot %d row %d = %g, want %d", g, i, snap.KeyAt(i, 0), i)
			}
		}
	}
}

func TestExtendDimsMismatchPanics(t *testing.T) {
	base := NewRelation("r", 2)
	delta := NewRelation("d", 3)
	delta.Append(1, 2, 3)
	defer func() {
		if recover() == nil {
			t.Error("Extend accepted a delta of different dimensionality")
		}
	}()
	base.Extend(delta)
}
