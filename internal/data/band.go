package data

import (
	"fmt"
	"math"
)

// Band describes a band-join condition over d join attributes. A pair (s, t)
// matches when, for every dimension i,
//
//	s.A_i - Low[i] <= t.A_i <= s.A_i + High[i].
//
// The symmetric band-join of the paper, |s.A_i − t.A_i| ≤ ε_i, corresponds to
// Low[i] == High[i] == ε_i. Asymmetric conditions (Section 2 of the paper)
// use different Low and High.
type Band struct {
	Low  []float64
	High []float64
}

// Symmetric returns a symmetric band condition with width eps[i] in each
// dimension.
func Symmetric(eps ...float64) Band {
	low := make([]float64, len(eps))
	high := make([]float64, len(eps))
	copy(low, eps)
	copy(high, eps)
	return Band{Low: low, High: high}
}

// Uniform returns a symmetric band condition with the same width in every one
// of d dimensions.
func Uniform(d int, eps float64) Band {
	w := make([]float64, d)
	for i := range w {
		w[i] = eps
	}
	return Symmetric(w...)
}

// Asymmetric returns a band condition with per-dimension lower and upper
// widths. It panics if the slices have different lengths.
func Asymmetric(low, high []float64) Band {
	if len(low) != len(high) {
		panic(fmt.Sprintf("data: asymmetric band widths must have equal length, got %d and %d", len(low), len(high)))
	}
	l := make([]float64, len(low))
	h := make([]float64, len(high))
	copy(l, low)
	copy(h, high)
	return Band{Low: l, High: h}
}

// Dims returns the dimensionality of the band condition.
func (b Band) Dims() int { return len(b.Low) }

// Validate reports whether the band condition is well formed: non-empty, equal
// Low/High lengths, and non-negative finite widths.
func (b Band) Validate() error {
	if len(b.Low) == 0 {
		return fmt.Errorf("data: band condition has no dimensions")
	}
	if len(b.Low) != len(b.High) {
		return fmt.Errorf("data: band condition has %d lower and %d upper widths", len(b.Low), len(b.High))
	}
	for i := range b.Low {
		if b.Low[i] < 0 || b.High[i] < 0 {
			return fmt.Errorf("data: band width in dimension %d is negative (low=%g, high=%g)", i, b.Low[i], b.High[i])
		}
		if math.IsNaN(b.Low[i]) || math.IsInf(b.Low[i], 0) || math.IsNaN(b.High[i]) || math.IsInf(b.High[i], 0) {
			return fmt.Errorf("data: band width in dimension %d is not finite", i)
		}
	}
	return nil
}

// Matches reports whether the pair (s, t) satisfies the band condition.
func (b Band) Matches(s, t []float64) bool {
	for i := range b.Low {
		if t[i] < s[i]-b.Low[i] || t[i] > s[i]+b.High[i] {
			return false
		}
	}
	return true
}

// MatchesDim reports whether dimension i of the pair (s, t) satisfies the band
// condition in that dimension.
func (b Band) MatchesDim(i int, s, t float64) bool {
	return t >= s-b.Low[i] && t <= s+b.High[i]
}

// Width returns the total band extent (Low[i]+High[i]) in dimension i. For a
// symmetric band with width ε this is 2ε.
func (b Band) Width(i int) float64 { return b.Low[i] + b.High[i] }

// MaxWidth returns the largest per-dimension half-width max(Low[i], High[i]).
// It is used when a single conservative radius is needed.
func (b Band) MaxWidth(i int) float64 { return math.Max(b.Low[i], b.High[i]) }

// IsEquiJoin reports whether every band width is zero, i.e. the condition
// degenerates to an equi-join (Figure 1, ε = 0).
func (b Band) IsEquiJoin() bool {
	for i := range b.Low {
		if b.Low[i] != 0 || b.High[i] != 0 {
			return false
		}
	}
	return true
}

// EpsRangeOfT returns the region of the join-attribute space containing every
// S-key that could match the T-key t: [t-High, t+Low] per dimension (the
// ε-range around t, mirrored because Matches is phrased from s's perspective).
func (b Band) EpsRangeOfT(t []float64) Region {
	lo := make([]float64, len(t))
	hi := make([]float64, len(t))
	for i := range t {
		lo[i] = t[i] - b.High[i]
		hi[i] = t[i] + b.Low[i]
	}
	return Region{Lo: lo, Hi: hi}
}

// EpsRangeOfS returns the region of the join-attribute space containing every
// T-key that could match the S-key s: [s-Low, s+High] per dimension.
func (b Band) EpsRangeOfS(s []float64) Region {
	lo := make([]float64, len(s))
	hi := make([]float64, len(s))
	for i := range s {
		lo[i] = s[i] - b.Low[i]
		hi[i] = s[i] + b.High[i]
	}
	return Region{Lo: lo, Hi: hi}
}

// String implements fmt.Stringer.
func (b Band) String() string {
	return fmt.Sprintf("band(low=%v, high=%v)", b.Low, b.High)
}
