package data

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
)

// relationWire is the gob wire representation of a Relation. Relation keeps
// its fields unexported to protect the flat-storage invariant, so it
// implements gob.GobEncoder/GobDecoder via this struct.
type relationWire struct {
	Name string
	Dims int
	Keys []float64
}

// GobEncode implements gob.GobEncoder.
func (r *Relation) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(relationWire{Name: r.name, Dims: r.dims, Keys: r.keys}); err != nil {
		return nil, fmt.Errorf("data: encoding relation %q: %w", r.name, err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (r *Relation) GobDecode(b []byte) error {
	var w relationWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("data: decoding relation: %w", err)
	}
	if w.Dims < 1 {
		return fmt.Errorf("data: decoded relation %q has invalid dimensionality %d", w.Name, w.Dims)
	}
	if len(w.Keys)%w.Dims != 0 {
		return fmt.Errorf("data: decoded relation %q has %d key values, not a multiple of %d dimensions", w.Name, len(w.Keys), w.Dims)
	}
	r.name = w.Name
	r.dims = w.Dims
	r.keys = w.Keys
	return nil
}

// PackKeysLE returns the key values of tuples [lo, hi) packed as raw
// little-endian IEEE-754 bytes (8 per value, row-major). Packed bytes travel
// through gob with a single copy instead of gob's per-value float encoding,
// which is what the cluster's streaming shuffle ships; AppendKeysLE is the
// receiving side. On little-endian hosts the result is a zero-copy view
// aliasing the relation's storage: the caller must neither modify it nor
// mutate the relation while the slice is live. On big-endian hosts
// (hostLittleEndian is a per-target constant, see pack_le.go/pack_be.go) the
// values are byte-swapped into a fresh slice so the wire format is identical.
func (r *Relation) PackKeysLE(lo, hi int) []byte {
	if lo < 0 || hi > r.Len() || lo > hi {
		panic(fmt.Sprintf("data: pack range [%d,%d) out of bounds for relation of %d tuples", lo, hi, r.Len()))
	}
	vals := r.keys[lo*r.dims : hi*r.dims]
	if len(vals) == 0 {
		return nil
	}
	if hostLittleEndian {
		return packFloatsNative(vals)
	}
	return packFloatsPortable(make([]byte, 0, len(vals)*8), vals)
}

// AppendKeysLE appends tuples packed by PackKeysLE. It returns an error (not
// a panic) on misaligned input because the bytes typically arrive from the
// network.
func (r *Relation) AppendKeysLE(raw []byte) error {
	if len(raw)%(8*r.dims) != 0 {
		return fmt.Errorf("data: relation %q: %d raw key bytes is not a multiple of %d (8 bytes x %d dims)",
			r.name, len(raw), 8*r.dims, r.dims)
	}
	n := len(raw) / 8
	if n == 0 {
		return nil
	}
	base := len(r.keys)
	r.keys = append(r.keys, make([]float64, n)...)
	dst := r.keys[base:]
	if hostLittleEndian {
		unpackFloatsNative(dst, raw)
	} else {
		unpackFloatsPortable(dst, raw)
	}
	return nil
}

// PackInt64sLE packs the values as raw little-endian bytes (8 per value),
// the companion of PackKeysLE for tuple-ID slices. On little-endian hosts the
// result is a zero-copy view aliasing vals: the caller must neither modify it
// nor mutate vals while the slice is live.
func PackInt64sLE(vals []int64) []byte {
	if len(vals) == 0 {
		return nil
	}
	if hostLittleEndian {
		return packInt64sNative(vals)
	}
	return packInt64sPortable(make([]byte, 0, len(vals)*8), vals)
}

// AppendInt64sLE appends values packed by PackInt64sLE to dst. Trailing bytes
// beyond the last complete value are ignored; callers validate alignment.
func AppendInt64sLE(dst []int64, raw []byte) []int64 {
	n := len(raw) / 8
	if n == 0 {
		return dst
	}
	base := len(dst)
	dst = append(dst, make([]int64, n)...)
	out := dst[base:]
	if hostLittleEndian {
		unpackInt64sNative(out, raw[:n*8])
	} else {
		unpackInt64sPortable(out, raw[:n*8])
	}
	return dst
}

// WriteCSV writes the relation's join attributes to w as CSV, one tuple per
// row, with a header row naming the attributes A1..Ad.
func (r *Relation) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	header := make([]string, r.dims)
	for d := 0; d < r.dims; d++ {
		header[d] = fmt.Sprintf("A%d", d+1)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: writing CSV header: %w", err)
	}
	row := make([]string, r.dims)
	for i := 0; i < r.Len(); i++ {
		k := r.Key(i)
		for d, v := range k {
			row[d] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("data: flushing CSV: %w", err)
	}
	return bw.Flush()
}

// ReadCSV reads a relation previously written by WriteCSV (or any CSV whose
// first row is a header and whose remaining rows are float columns).
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(bufio.NewReader(rd))
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading CSV header: %w", err)
	}
	dims := len(header)
	if dims == 0 {
		return nil, fmt.Errorf("data: CSV for relation %q has an empty header", name)
	}
	r := NewRelation(name, dims)
	key := make([]float64, dims)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("data: reading CSV line %d: %w", line, err)
		}
		if len(rec) != dims {
			return nil, fmt.Errorf("data: CSV line %d has %d columns, want %d", line, len(rec), dims)
		}
		for d, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("data: CSV line %d column %d: %w", line, d+1, err)
			}
			key[d] = v
		}
		r.AppendKey(key)
	}
	return r, nil
}
