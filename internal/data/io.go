package data

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
)

// relationWire is the gob wire representation of a Relation. Relation keeps
// its fields unexported to protect the flat-storage invariant, so it
// implements gob.GobEncoder/GobDecoder via this struct.
type relationWire struct {
	Name string
	Dims int
	Keys []float64
}

// GobEncode implements gob.GobEncoder.
func (r *Relation) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(relationWire{Name: r.name, Dims: r.dims, Keys: r.keys}); err != nil {
		return nil, fmt.Errorf("data: encoding relation %q: %w", r.name, err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (r *Relation) GobDecode(b []byte) error {
	var w relationWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("data: decoding relation: %w", err)
	}
	if w.Dims < 1 {
		return fmt.Errorf("data: decoded relation %q has invalid dimensionality %d", w.Name, w.Dims)
	}
	if len(w.Keys)%w.Dims != 0 {
		return fmt.Errorf("data: decoded relation %q has %d key values, not a multiple of %d dimensions", w.Name, len(w.Keys), w.Dims)
	}
	r.name = w.Name
	r.dims = w.Dims
	r.keys = w.Keys
	return nil
}

// WriteCSV writes the relation's join attributes to w as CSV, one tuple per
// row, with a header row naming the attributes A1..Ad.
func (r *Relation) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	header := make([]string, r.dims)
	for d := 0; d < r.dims; d++ {
		header[d] = fmt.Sprintf("A%d", d+1)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: writing CSV header: %w", err)
	}
	row := make([]string, r.dims)
	for i := 0; i < r.Len(); i++ {
		k := r.Key(i)
		for d, v := range k {
			row[d] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("data: flushing CSV: %w", err)
	}
	return bw.Flush()
}

// ReadCSV reads a relation previously written by WriteCSV (or any CSV whose
// first row is a header and whose remaining rows are float columns).
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(bufio.NewReader(rd))
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading CSV header: %w", err)
	}
	dims := len(header)
	if dims == 0 {
		return nil, fmt.Errorf("data: CSV for relation %q has an empty header", name)
	}
	r := NewRelation(name, dims)
	key := make([]float64, dims)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("data: reading CSV line %d: %w", line, err)
		}
		if len(rec) != dims {
			return nil, fmt.Errorf("data: CSV line %d has %d columns, want %d", line, len(rec), dims)
		}
		for d, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("data: CSV line %d column %d: %w", line, d+1, err)
			}
			key[d] = v
		}
		r.AppendKey(key)
	}
	return r, nil
}
