// Package data provides the fundamental data model for distributed band-joins:
// relations stored as flat columnar-style key arrays, band-join conditions
// (symmetric and asymmetric), axis-aligned regions of the join-attribute space,
// and generators for the synthetic and real-like datasets used in the paper's
// evaluation (Pareto, reverse Pareto, ebird/cloud surrogates, PTF surrogate).
package data

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Relation is a collection of tuples participating in a band-join. Only the
// join attributes (the "key") are stored explicitly; any non-join payload is
// identified by the tuple index, which acts as a stable tuple ID.
//
// Keys are stored in a single flat slice in row-major order so that a relation
// with millions of tuples costs one allocation for the key data and produces
// no per-tuple garbage. Key(i) returns a subslice aliasing that storage.
type Relation struct {
	name string
	dims int
	keys []float64 // len == n*dims, row-major
}

// NewRelation returns an empty relation with the given name and number of
// join attributes (dimensions). It panics if dims < 1.
func NewRelation(name string, dims int) *Relation {
	if dims < 1 {
		panic(fmt.Sprintf("data: relation %q must have at least one dimension, got %d", name, dims))
	}
	return &Relation{name: name, dims: dims}
}

// NewRelationCapacity returns an empty relation with storage pre-allocated for
// n tuples.
func NewRelationCapacity(name string, dims, n int) *Relation {
	r := NewRelation(name, dims)
	if n > 0 {
		r.keys = make([]float64, 0, n*dims)
	}
	return r
}

// NewRelationFromKeys returns a relation that adopts the given flat key slice
// (row-major, len(keys) must be a multiple of dims). The slice is not copied;
// the caller must not modify it afterwards. This is the zero-copy constructor
// the parallel shuffle uses to wrap partition buffers it filled directly.
func NewRelationFromKeys(name string, dims int, keys []float64) *Relation {
	r := NewRelation(name, dims)
	if len(keys)%dims != 0 {
		panic(fmt.Sprintf("data: relation %q: %d key values is not a multiple of %d dimensions", name, len(keys), dims))
	}
	r.keys = keys
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Dims returns the number of join attributes.
func (r *Relation) Dims() int { return r.dims }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.keys) / r.dims }

// Key returns the join-attribute values of tuple i. The returned slice aliases
// the relation's storage and must not be modified or retained across Append.
func (r *Relation) Key(i int) []float64 {
	return r.keys[i*r.dims : (i+1)*r.dims : (i+1)*r.dims]
}

// KeyAt returns attribute d of tuple i without forming a subslice. It is the
// accessor hot loops use (e.g. building sort keys over one dimension).
func (r *Relation) KeyAt(i, d int) float64 {
	return r.keys[i*r.dims+d]
}

// Append adds a tuple with the given join-attribute values. It panics if the
// number of values does not match the relation's dimensionality.
func (r *Relation) Append(key ...float64) {
	if len(key) != r.dims {
		panic(fmt.Sprintf("data: relation %q expects %d join attributes, got %d", r.name, r.dims, len(key)))
	}
	r.keys = append(r.keys, key...)
}

// AppendKey adds a tuple without the variadic copy; key must have length Dims.
func (r *Relation) AppendKey(key []float64) {
	if len(key) != r.dims {
		panic(fmt.Sprintf("data: relation %q expects %d join attributes, got %d", r.name, r.dims, len(key)))
	}
	r.keys = append(r.keys, key...)
}

// AppendRows bulk-appends tuples [lo, hi) of src with a single copy. It panics
// if the dimensionalities differ or the range is out of bounds.
func (r *Relation) AppendRows(src *Relation, lo, hi int) {
	if src.dims != r.dims {
		panic(fmt.Sprintf("data: relation %q (%dD) cannot append rows of %q (%dD)", r.name, r.dims, src.name, src.dims))
	}
	if lo < 0 || hi > src.Len() || lo > hi {
		panic(fmt.Sprintf("data: AppendRows range [%d,%d) out of bounds for relation of %d tuples", lo, hi, src.Len()))
	}
	r.keys = append(r.keys, src.keys[lo*src.dims:hi*src.dims]...)
}

// Reserve grows the key storage capacity so that n further tuples can be
// appended without reallocation.
func (r *Relation) Reserve(n int) {
	need := len(r.keys) + n*r.dims
	if cap(r.keys) >= need {
		return
	}
	grown := make([]float64, len(r.keys), need)
	copy(grown, r.keys)
	r.keys = grown
}

// KeysRange returns the row-major key storage of tuples [lo, hi) as a
// zero-copy view. The caller must treat it as read-only and must not retain
// it across Append; it is the slab the columnar wire encoder gathers from.
func (r *Relation) KeysRange(lo, hi int) []float64 {
	if lo < 0 || hi > r.Len() || lo > hi {
		panic(fmt.Sprintf("data: key range [%d,%d) out of bounds for relation of %d tuples", lo, hi, r.Len()))
	}
	return r.keys[lo*r.dims : hi*r.dims : hi*r.dims]
}

// GrowRows appends n zeroed tuples and returns the index of the first, so
// columnar decoders can reserve a block of rows and fill it one dimension at
// a time with SetColumn.
func (r *Relation) GrowRows(n int) int {
	base := r.Len()
	r.keys = append(r.keys, make([]float64, n*r.dims)...)
	return base
}

// SetColumn overwrites attribute d of tuples [base, base+len(vals)) — one
// strided scatter per decoded column, the receiving half of the columnar wire
// format.
func (r *Relation) SetColumn(base, d int, vals []float64) {
	if d < 0 || d >= r.dims || base < 0 || base+len(vals) > r.Len() {
		panic(fmt.Sprintf("data: SetColumn(base=%d, d=%d, n=%d) out of bounds for %dD relation of %d tuples",
			base, d, len(vals), r.dims, r.Len()))
	}
	keys := r.keys[base*r.dims:]
	for i, v := range vals {
		keys[i*r.dims+d] = v
	}
}

// SetKey overwrites the join-attribute values of tuple i. It panics if the
// number of values does not match the relation's dimensionality. It exists for
// owned, mutable relations (e.g. a reservoir sample being merged); relations
// shared across goroutines must never be mutated through it.
func (r *Relation) SetKey(i int, key []float64) {
	if len(key) != r.dims {
		panic(fmt.Sprintf("data: relation %q expects %d join attributes, got %d", r.name, r.dims, len(key)))
	}
	copy(r.keys[i*r.dims:(i+1)*r.dims], key)
}

// Extend returns a new relation holding the receiver's tuples followed by
// delta's. The receiver is never mutated, so readers holding it (concurrent
// shuffles, sample draws) keep a consistent snapshot; when the receiver's
// storage has spare capacity the result appends into it in place (sharing the
// immutable prefix), otherwise the keys are copied once into storage grown
// with doubling headroom, so a chain of Extends costs amortized O(|delta|).
//
// Because an in-place extension writes past the receiver's length, only one
// lineage may ever extend a given relation: callers (the engine's Append path)
// must serialize Extends of the same relation and must always adopt the
// returned snapshot as the new head of the lineage.
func (r *Relation) Extend(delta *Relation) *Relation {
	if delta.dims != r.dims {
		panic(fmt.Sprintf("data: relation %q (%dD) cannot be extended by %q (%dD)", r.name, r.dims, delta.name, delta.dims))
	}
	need := len(r.keys) + len(delta.keys)
	keys := r.keys
	if cap(keys) < need {
		keys = make([]float64, len(r.keys), need+need/2)
		copy(keys, r.keys)
	}
	keys = append(keys, delta.keys...)
	return &Relation{name: r.name, dims: r.dims, keys: keys}
}

// Clone returns a deep copy of the relation, optionally under a new name.
func (r *Relation) Clone(name string) *Relation {
	if name == "" {
		name = r.name
	}
	out := &Relation{name: name, dims: r.dims, keys: make([]float64, len(r.keys))}
	copy(out.keys, r.keys)
	return out
}

// Slice returns a new relation containing tuples [lo, hi). The key data is
// copied so the result is independent of the receiver.
func (r *Relation) Slice(name string, lo, hi int) *Relation {
	if lo < 0 || hi > r.Len() || lo > hi {
		panic(fmt.Sprintf("data: slice [%d,%d) out of range for relation of %d tuples", lo, hi, r.Len()))
	}
	out := NewRelationCapacity(name, r.dims, hi-lo)
	out.AppendRows(r, lo, hi)
	return out
}

// MinMax returns, per dimension, the minimum and maximum attribute value in
// the relation. It returns an error if the relation is empty.
func (r *Relation) MinMax() (min, max []float64, err error) {
	n := r.Len()
	if n == 0 {
		return nil, nil, errors.New("data: MinMax of empty relation")
	}
	min = make([]float64, r.dims)
	max = make([]float64, r.dims)
	for d := 0; d < r.dims; d++ {
		min[d] = math.Inf(1)
		max[d] = math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		k := r.Key(i)
		for d, v := range k {
			if v < min[d] {
				min[d] = v
			}
			if v > max[d] {
				max[d] = v
			}
		}
	}
	return min, max, nil
}

// SortByDim sorts the relation's tuples in place by ascending value of the
// given dimension, breaking ties by subsequent dimensions. Tuple IDs (indices)
// are not stable across this call; it is intended for relations used purely as
// value collections (e.g. samples).
func (r *Relation) SortByDim(dim int) {
	n := r.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ka, kb := r.Key(idx[a]), r.Key(idx[b])
		if ka[dim] != kb[dim] {
			return ka[dim] < kb[dim]
		}
		for d := 0; d < r.dims; d++ {
			if ka[d] != kb[d] {
				return ka[d] < kb[d]
			}
		}
		return false
	})
	sorted := make([]float64, len(r.keys))
	for pos, i := range idx {
		copy(sorted[pos*r.dims:(pos+1)*r.dims], r.Key(i))
	}
	r.keys = sorted
}

// Values returns a copy of all values of the given dimension, in tuple order.
func (r *Relation) Values(dim int) []float64 {
	n := r.Len()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = r.keys[i*r.dims+dim]
	}
	return out
}

// String implements fmt.Stringer.
func (r *Relation) String() string {
	return fmt.Sprintf("%s(%d tuples, %dD)", r.name, r.Len(), r.dims)
}
