package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRelationPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRelation accepted zero dimensions")
		}
	}()
	NewRelation("bad", 0)
}

func TestRelationAppendAndKey(t *testing.T) {
	r := NewRelation("r", 3)
	r.Append(1, 2, 3)
	r.Append(4, 5, 6)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if got := r.Key(1); got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Errorf("Key(1) = %v, want [4 5 6]", got)
	}
	if r.Dims() != 3 {
		t.Errorf("Dims = %d, want 3", r.Dims())
	}
}

func TestRelationAppendPanicsOnWrongArity(t *testing.T) {
	r := NewRelation("r", 2)
	defer func() {
		if recover() == nil {
			t.Error("Append accepted a key of wrong arity")
		}
	}()
	r.Append(1)
}

func TestRelationCloneIsIndependent(t *testing.T) {
	r := NewRelation("orig", 1)
	r.Append(1)
	c := r.Clone("copy")
	c.Append(2)
	if r.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone is not independent: orig %d, copy %d", r.Len(), c.Len())
	}
	if c.Name() != "copy" {
		t.Errorf("clone name = %q", c.Name())
	}
	if r.Clone("").Name() != "orig" {
		t.Error("Clone with empty name should keep the original name")
	}
}

func TestRelationSlice(t *testing.T) {
	r := NewRelation("r", 1)
	for i := 0; i < 10; i++ {
		r.Append(float64(i))
	}
	s := r.Slice("mid", 3, 7)
	if s.Len() != 4 {
		t.Fatalf("Slice len = %d, want 4", s.Len())
	}
	if s.Key(0)[0] != 3 || s.Key(3)[0] != 6 {
		t.Errorf("Slice content wrong: %v .. %v", s.Key(0), s.Key(3))
	}
	defer func() {
		if recover() == nil {
			t.Error("Slice accepted an out-of-range interval")
		}
	}()
	r.Slice("bad", 5, 20)
}

func TestRelationMinMax(t *testing.T) {
	r := NewRelation("r", 2)
	r.Append(3, -1)
	r.Append(1, 5)
	r.Append(2, 0)
	min, max, err := r.MinMax()
	if err != nil {
		t.Fatal(err)
	}
	if min[0] != 1 || min[1] != -1 || max[0] != 3 || max[1] != 5 {
		t.Errorf("MinMax = %v %v", min, max)
	}
	empty := NewRelation("e", 2)
	if _, _, err := empty.MinMax(); err == nil {
		t.Error("MinMax of an empty relation should fail")
	}
}

func TestRelationSortByDim(t *testing.T) {
	r := NewRelation("r", 2)
	r.Append(3, 1)
	r.Append(1, 2)
	r.Append(2, 3)
	r.SortByDim(0)
	if r.Key(0)[0] != 1 || r.Key(1)[0] != 2 || r.Key(2)[0] != 3 {
		t.Errorf("SortByDim(0) produced %v %v %v", r.Key(0), r.Key(1), r.Key(2))
	}
}

func TestRelationValues(t *testing.T) {
	r := NewRelation("r", 2)
	r.Append(1, 10)
	r.Append(2, 20)
	vals := r.Values(1)
	if len(vals) != 2 || vals[0] != 10 || vals[1] != 20 {
		t.Errorf("Values(1) = %v", vals)
	}
}

func TestRelationStringer(t *testing.T) {
	r := NewRelation("r", 2)
	r.Append(1, 2)
	if got := r.String(); got == "" {
		t.Error("String() is empty")
	}
}

// TestRelationKeyRoundTrip is a property test: any appended key is read back
// verbatim at its index.
func TestRelationKeyRoundTrip(t *testing.T) {
	f := func(keys [][3]float64) bool {
		r := NewRelation("q", 3)
		for _, k := range keys {
			r.Append(k[0], k[1], k[2])
		}
		if r.Len() != len(keys) {
			return false
		}
		for i, k := range keys {
			got := r.Key(i)
			if got[0] != k[0] || got[1] != k[1] || got[2] != k[2] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestNewRelationFromKeys(t *testing.T) {
	keys := []float64{1, 2, 3, 4, 5, 6}
	r := NewRelationFromKeys("f", 2, keys)
	if r.Len() != 3 || r.Dims() != 2 {
		t.Fatalf("got %d tuples x %dD, want 3 x 2D", r.Len(), r.Dims())
	}
	if k := r.Key(1); k[0] != 3 || k[1] != 4 {
		t.Errorf("Key(1) = %v, want [3 4]", k)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewRelationFromKeys accepted a non-multiple key slice")
		}
	}()
	NewRelationFromKeys("bad", 2, []float64{1, 2, 3})
}

func TestAppendRows(t *testing.T) {
	src := NewRelation("src", 2)
	for i := 0; i < 5; i++ {
		src.Append(float64(i), float64(10*i))
	}
	dst := NewRelation("dst", 2)
	dst.Append(-1, -2)
	dst.AppendRows(src, 1, 4)
	if dst.Len() != 4 {
		t.Fatalf("Len = %d, want 4", dst.Len())
	}
	for i := 0; i < 3; i++ {
		want := src.Key(i + 1)
		got := dst.Key(i + 1)
		if got[0] != want[0] || got[1] != want[1] {
			t.Errorf("row %d = %v, want %v", i+1, got, want)
		}
	}
	// Appended rows are copies, not aliases.
	src.Key(1)[0] = 999
	if dst.Key(1)[0] == 999 {
		t.Error("AppendRows aliased the source storage")
	}
	defer func() {
		if recover() == nil {
			t.Error("AppendRows accepted mismatched dimensionality")
		}
	}()
	other := NewRelation("o", 3)
	other.Append(1, 2, 3)
	dst.AppendRows(other, 0, 1)
}

func TestAppendRowsRangeChecks(t *testing.T) {
	src := NewRelation("src", 1)
	src.Append(1)
	dst := NewRelation("dst", 1)
	defer func() {
		if recover() == nil {
			t.Error("AppendRows accepted an out-of-range interval")
		}
	}()
	dst.AppendRows(src, 0, 2)
}

func TestKeyAt(t *testing.T) {
	r := NewRelation("k", 3)
	r.Append(1, 2, 3)
	r.Append(4, 5, 6)
	if r.KeyAt(1, 2) != 6 || r.KeyAt(0, 0) != 1 {
		t.Errorf("KeyAt mismatch: got (%g, %g)", r.KeyAt(1, 2), r.KeyAt(0, 0))
	}
}

func TestReserve(t *testing.T) {
	r := NewRelation("r", 2)
	r.Append(1, 2)
	r.Reserve(100)
	before := &r.keys[0]
	for i := 0; i < 100; i++ {
		r.Append(float64(i), float64(i))
	}
	if &r.keys[0] != before {
		t.Error("Reserve did not prevent reallocation")
	}
	if r.Len() != 101 {
		t.Errorf("Len = %d, want 101", r.Len())
	}
}

func TestPackedLERoundTrip(t *testing.T) {
	r := NewRelation("r", 2)
	for i := 0; i < 6; i++ {
		r.Append(float64(i)+0.25, float64(i)*-10)
	}
	back := NewRelation("back", 2)
	if err := back.AppendKeysLE(r.PackKeysLE(0, 3)); err != nil {
		t.Fatalf("AppendKeysLE: %v", err)
	}
	if err := back.AppendKeysLE(r.PackKeysLE(3, 6)); err != nil {
		t.Fatalf("AppendKeysLE: %v", err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip has %d tuples, want %d", back.Len(), r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		for d := 0; d < r.Dims(); d++ {
			if back.KeyAt(i, d) != r.KeyAt(i, d) {
				t.Fatalf("row %d dim %d: %v != %v", i, d, back.KeyAt(i, d), r.KeyAt(i, d))
			}
		}
	}
	if err := back.AppendKeysLE(make([]byte, 12)); err == nil {
		t.Error("AppendKeysLE accepted a misaligned payload")
	}
	for _, bad := range [][2]int{{-1, 2}, {3, 7}, {4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PackKeysLE(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			r.PackKeysLE(bad[0], bad[1])
		}()
	}

	ids := []int64{0, -7, 1 << 40, 42}
	got := AppendInt64sLE([]int64{99}, PackInt64sLE(ids))
	want := append([]int64{99}, ids...)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("id round trip %v, want %v", got, want)
		}
	}
}
