package data

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	r := NewRelation("r", 3)
	r.Append(1.5, -2, 3e10)
	r.Append(0.0001, 7, -9.25)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV("r2", &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != r.Len() || back.Dims() != r.Dims() {
		t.Fatalf("round trip changed shape: %v vs %v", back, r)
	}
	for i := 0; i < r.Len(); i++ {
		for d := 0; d < r.Dims(); d++ {
			if back.Key(i)[d] != r.Key(i)[d] {
				t.Errorf("value (%d,%d) = %g, want %g", i, d, back.Key(i)[d], r.Key(i)[d])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("bad", strings.NewReader("a,b\n1,notanumber\n")); err == nil {
		t.Error("non-numeric field accepted")
	}
	if _, err := ReadCSV("bad", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := ReadCSV("bad", strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestGobRoundTrip(t *testing.T) {
	r := NewRelation("wire", 2)
	r.Append(1, 2)
	r.Append(3, 4)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var back Relation
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	if back.Name() != "wire" || back.Len() != 2 || back.Dims() != 2 {
		t.Fatalf("decoded relation wrong: %v", &back)
	}
	if back.Key(1)[1] != 4 {
		t.Errorf("decoded value = %g, want 4", back.Key(1)[1])
	}
}

func TestGobDecodeRejectsCorruptPayload(t *testing.T) {
	var r Relation
	if err := r.GobDecode([]byte("garbage")); err == nil {
		t.Error("corrupt payload accepted")
	}
}
