//go:build !(386 || amd64 || amd64p32 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm)

package data

// hostLittleEndian is false on big-endian targets: the pack/unpack entry
// points take the portable byte-swapping path instead of reinterpreting
// memory, so the wire format stays little-endian everywhere.
const hostLittleEndian = false

// The native functions are never reached when hostLittleEndian is false (the
// branches are compiled out), but they must exist to build; they delegate to
// the portable implementations.

func packFloatsNative(vals []float64) []byte {
	return packFloatsPortable(make([]byte, 0, len(vals)*8), vals)
}

func unpackFloatsNative(dst []float64, raw []byte) {
	unpackFloatsPortable(dst, raw)
}

func packInt64sNative(vals []int64) []byte {
	return packInt64sPortable(make([]byte, 0, len(vals)*8), vals)
}

func unpackInt64sNative(dst []int64, raw []byte) {
	unpackInt64sPortable(dst, raw)
}
