//go:build 386 || amd64 || amd64p32 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm

package data

import "unsafe"

// hostLittleEndian selects the zero-copy packing fast paths at compile time.
// This file is built only on little-endian targets, where the wire format
// (little-endian 64-bit values) matches memory layout exactly.
const hostLittleEndian = true

// packFloatsNative returns a zero-copy byte view of vals. The caller must
// neither modify the result nor mutate vals while the slice is live.
func packFloatsNative(vals []float64) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), len(vals)*8)
}

// unpackFloatsNative fills dst from raw with a single copy; len(raw) must be
// exactly 8*len(dst).
func unpackFloatsNative(dst []float64, raw []byte) {
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), len(dst)*8), raw)
}

// packInt64sNative is packFloatsNative for tuple-ID slices.
func packInt64sNative(vals []int64) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), len(vals)*8)
}

// unpackInt64sNative fills dst from raw with a single copy.
func unpackInt64sNative(dst []int64, raw []byte) {
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), len(dst)*8), raw)
}
