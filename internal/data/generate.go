package data

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator produces synthetic relations with a known distribution of the join
// attributes. All generators are deterministic given the seed so that
// experiments and tests are reproducible.
type Generator interface {
	// Generate returns a relation with n tuples and the generator's
	// dimensionality, drawn using the given pseudo-random source.
	Generate(name string, n int, rng *rand.Rand) *Relation
	// Dims returns the dimensionality of generated relations.
	Dims() int
	// String describes the generator (used in experiment reports).
	String() string
}

// ---------------------------------------------------------------------------
// Pareto

// ParetoGen draws every join attribute independently from a Pareto
// distribution with shape Z over domain [Scale, ∞): PDF z·scale^z / x^(z+1).
// Larger Z means more skew toward the lower end of the domain. This is the
// paper's pareto-z dataset family; the paper uses Scale = 1.
type ParetoGen struct {
	D     int
	Z     float64
	Scale float64
}

// NewPareto returns a Pareto generator over [1, ∞) with d dimensions and
// shape z.
func NewPareto(d int, z float64) ParetoGen { return ParetoGen{D: d, Z: z, Scale: 1} }

// Dims implements Generator.
func (g ParetoGen) Dims() int { return g.D }

// String implements Generator.
func (g ParetoGen) String() string { return fmt.Sprintf("pareto-%g (d=%d)", g.Z, g.D) }

// Sample draws one Pareto value.
func (g ParetoGen) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return g.Scale / math.Pow(u, 1/g.Z)
}

// Generate implements Generator.
func (g ParetoGen) Generate(name string, n int, rng *rand.Rand) *Relation {
	r := NewRelationCapacity(name, g.D, n)
	key := make([]float64, g.D)
	for i := 0; i < n; i++ {
		for d := 0; d < g.D; d++ {
			key[d] = g.Sample(rng)
		}
		r.AppendKey(key)
	}
	return r
}

// ---------------------------------------------------------------------------
// Reverse Pareto

// ReverseParetoGen mirrors a Pareto distribution around Pivot: values are
// Pivot − x with x ~ Pareto(Z) over [1, ∞), so the distribution is skewed
// toward large values just below Pivot and has a long tail toward −∞. The
// paper's rv-pareto-z datasets pair a regular Pareto S with a reverse Pareto T
// (Pivot = 10^6) so that high-frequency regions of the two inputs do not
// coincide.
type ReverseParetoGen struct {
	D     int
	Z     float64
	Pivot float64
}

// NewReversePareto returns a reverse-Pareto generator with pivot 10^6, as in
// the paper.
func NewReversePareto(d int, z float64) ReverseParetoGen {
	return ReverseParetoGen{D: d, Z: z, Pivot: 1e6}
}

// Dims implements Generator.
func (g ReverseParetoGen) Dims() int { return g.D }

// String implements Generator.
func (g ReverseParetoGen) String() string { return fmt.Sprintf("rv-pareto-%g (d=%d)", g.Z, g.D) }

// Generate implements Generator.
func (g ReverseParetoGen) Generate(name string, n int, rng *rand.Rand) *Relation {
	p := ParetoGen{D: g.D, Z: g.Z, Scale: 1}
	r := NewRelationCapacity(name, g.D, n)
	key := make([]float64, g.D)
	for i := 0; i < n; i++ {
		for d := 0; d < g.D; d++ {
			key[d] = g.Pivot - p.Sample(rng)
		}
		r.AppendKey(key)
	}
	return r
}

// ---------------------------------------------------------------------------
// Uniform

// UniformGen draws every join attribute independently and uniformly from
// [Lo[i], Hi[i]).
type UniformGen struct {
	Lo []float64
	Hi []float64
}

// NewUniform returns a uniform generator over the box [lo, hi).
func NewUniform(lo, hi []float64) UniformGen {
	if len(lo) != len(hi) {
		panic("data: uniform generator bounds must have equal length")
	}
	return UniformGen{Lo: lo, Hi: hi}
}

// Dims implements Generator.
func (g UniformGen) Dims() int { return len(g.Lo) }

// String implements Generator.
func (g UniformGen) String() string { return fmt.Sprintf("uniform (d=%d)", len(g.Lo)) }

// Generate implements Generator.
func (g UniformGen) Generate(name string, n int, rng *rand.Rand) *Relation {
	r := NewRelationCapacity(name, len(g.Lo), n)
	key := make([]float64, len(g.Lo))
	for i := 0; i < n; i++ {
		for d := range g.Lo {
			key[d] = g.Lo[d] + rng.Float64()*(g.Hi[d]-g.Lo[d])
		}
		r.AppendKey(key)
	}
	return r
}

// ---------------------------------------------------------------------------
// Clustered spatio-temporal data (ebird / cloud surrogate)

// Hotspot is one cluster of a clustered spatio-temporal generator.
type Hotspot struct {
	Center []float64
	Spread []float64
	Weight float64
}

// ClusteredGen draws tuples from a mixture of Gaussian hotspots plus a uniform
// background component over the bounding box [Lo, Hi]. It is the surrogate for
// the paper's real ebird (bird sightings) and cloud (weather reports)
// datasets: both are spatio-temporal with heavy clustering (popular birding
// locations, weather-station locations), and their hotspots are correlated
// with each other. Generated values are clamped to the bounding box so that
// domain-dependent algorithms (Grid-ε) see a finite domain, as for the real
// attributes latitude, longitude, and time.
type ClusteredGen struct {
	Lo, Hi     []float64
	Hotspots   []Hotspot
	Background float64 // fraction of tuples drawn uniformly from the box
	name       string
}

// Dims implements Generator.
func (g ClusteredGen) Dims() int { return len(g.Lo) }

// String implements Generator.
func (g ClusteredGen) String() string {
	return fmt.Sprintf("%s (clustered, d=%d, %d hotspots)", g.name, len(g.Lo), len(g.Hotspots))
}

// Generate implements Generator.
func (g ClusteredGen) Generate(name string, n int, rng *rand.Rand) *Relation {
	r := NewRelationCapacity(name, g.Dims(), n)
	total := 0.0
	for _, h := range g.Hotspots {
		total += h.Weight
	}
	key := make([]float64, g.Dims())
	for i := 0; i < n; i++ {
		if rng.Float64() < g.Background || total == 0 {
			for d := range key {
				key[d] = g.Lo[d] + rng.Float64()*(g.Hi[d]-g.Lo[d])
			}
		} else {
			// Pick a hotspot proportionally to weight.
			x := rng.Float64() * total
			hi := 0
			for hi < len(g.Hotspots)-1 && x > g.Hotspots[hi].Weight {
				x -= g.Hotspots[hi].Weight
				hi++
			}
			h := g.Hotspots[hi]
			for d := range key {
				v := h.Center[d] + rng.NormFloat64()*h.Spread[d]
				if v < g.Lo[d] {
					v = g.Lo[d]
				}
				if v > g.Hi[d] {
					v = g.Hi[d]
				}
				key[d] = v
			}
		}
		r.AppendKey(key)
	}
	return r
}

// EBirdSurrogate returns a generator mimicking the paper's ebird dataset:
// 3 join attributes (time in days since 1970, latitude, longitude) with
// strong clustering around popular observation sites and seasons.
func EBirdSurrogate(seed int64) ClusteredGen {
	rng := rand.New(rand.NewSource(seed))
	lo := []float64{10000, -90, -180}
	hi := []float64{16000, 90, 180}
	hotspots := make([]Hotspot, 0, 24)
	for i := 0; i < 24; i++ {
		hotspots = append(hotspots, Hotspot{
			Center: []float64{
				10000 + rng.Float64()*6000,
				-60 + rng.Float64()*120,
				-160 + rng.Float64()*320,
			},
			Spread: []float64{20 + rng.Float64()*80, 0.5 + rng.Float64()*2, 0.5 + rng.Float64()*2},
			Weight: 0.5 + rng.Float64()*2,
		})
	}
	return ClusteredGen{Lo: lo, Hi: hi, Hotspots: hotspots, Background: 0.10, name: "ebird"}
}

// CloudSurrogate returns a generator mimicking the paper's cloud (synoptic
// weather report) dataset. Its hotspots are derived from the ebird surrogate's
// hotspots (weather stations cover the same populated areas) but with wider
// spreads and a larger uniform background, so the two relations are correlated
// but not identical — the property the paper's real-data experiments rely on.
func CloudSurrogate(seed int64) ClusteredGen {
	b := EBirdSurrogate(seed)
	rng := rand.New(rand.NewSource(seed + 1))
	hotspots := make([]Hotspot, 0, len(b.Hotspots))
	for _, h := range b.Hotspots {
		c := make([]float64, len(h.Center))
		s := make([]float64, len(h.Spread))
		for d := range c {
			c[d] = h.Center[d] + rng.NormFloat64()*h.Spread[d]*0.5
			s[d] = h.Spread[d] * (1.5 + rng.Float64())
		}
		hotspots = append(hotspots, Hotspot{Center: c, Spread: s, Weight: h.Weight})
	}
	return ClusteredGen{Lo: b.Lo, Hi: b.Hi, Hotspots: hotspots, Background: 0.30, name: "cloud"}
}

// ---------------------------------------------------------------------------
// PTF sky-survey surrogate

// PTFGen mimics the Palomar Transient Factory object catalog used in
// Appendix A.5: celestial objects at fixed (right ascension, declination)
// positions, each observed several times with sub-arcsecond jitter. A
// band-self-join with an arcsecond-scale band width groups repeat
// observations of the same object.
type PTFGen struct {
	// ObsPerObject is the mean number of repeat observations per object.
	ObsPerObject float64
	// JitterDeg is the positional jitter (standard deviation, degrees) between
	// repeat observations of the same object. One arcsecond is 1/3600 degree.
	JitterDeg float64
}

// NewPTF returns a PTF surrogate with 3 observations per object on average and
// 0.3 arcsecond jitter.
func NewPTF() PTFGen { return PTFGen{ObsPerObject: 3, JitterDeg: 0.3 / 3600} }

// Dims implements Generator.
func (PTFGen) Dims() int { return 2 }

// String implements Generator.
func (g PTFGen) String() string { return "ptf_objects (d=2)" }

// Generate implements Generator.
func (g PTFGen) Generate(name string, n int, rng *rand.Rand) *Relation {
	r := NewRelationCapacity(name, 2, n)
	// Objects cluster along survey fields: draw field centers, then objects
	// inside fields, then repeat observations of each object.
	nFields := 64
	fields := make([][2]float64, nFields)
	for i := range fields {
		fields[i] = [2]float64{rng.Float64() * 360, -30 + rng.Float64()*90}
	}
	key := make([]float64, 2)
	for r.Len() < n {
		f := fields[rng.Intn(nFields)]
		objRA := f[0] + rng.NormFloat64()*1.5
		objDec := f[1] + rng.NormFloat64()*1.5
		obs := 1 + rng.Intn(int(2*g.ObsPerObject))
		for o := 0; o < obs && r.Len() < n; o++ {
			key[0] = objRA + rng.NormFloat64()*g.JitterDeg
			key[1] = objDec + rng.NormFloat64()*g.JitterDeg
			r.AppendKey(key)
		}
	}
	return r
}

// ---------------------------------------------------------------------------
// Convenience pair constructors used throughout the experiments.

// ParetoPair generates the paper's pareto-z pair of relations: S and T both
// Pareto(z) with n tuples each, so high-frequency values coincide.
func ParetoPair(d int, z float64, n int, seed int64) (*Relation, *Relation) {
	g := NewPareto(d, z)
	s := g.Generate("S", n, rand.New(rand.NewSource(seed)))
	t := g.Generate("T", n, rand.New(rand.NewSource(seed+1)))
	return s, t
}

// ReverseParetoPair generates the paper's rv-pareto-z pair: S is Pareto(z)
// over [1, ∞) and T is reverse Pareto descending from 10^6, so dense regions
// of S and T are far apart.
func ReverseParetoPair(d int, z float64, n int, seed int64) (*Relation, *Relation) {
	s := NewPareto(d, z).Generate("S", n, rand.New(rand.NewSource(seed)))
	t := NewReversePareto(d, z).Generate("T", n, rand.New(rand.NewSource(seed+1)))
	return s, t
}

// EBirdCloudPair generates the ebird/cloud surrogate pair with nS bird
// sightings and nT weather reports.
func EBirdCloudPair(nS, nT int, seed int64) (*Relation, *Relation) {
	s := EBirdSurrogate(seed).Generate("ebird", nS, rand.New(rand.NewSource(seed+10)))
	t := CloudSurrogate(seed).Generate("cloud", nT, rand.New(rand.NewSource(seed+11)))
	return s, t
}

// PTFPair generates the PTF surrogate self-join pair: the paper joins the
// observation catalog with itself to find repeat observations of the same
// celestial object, so both sides are the same catalog.
func PTFPair(n int, seed int64) (*Relation, *Relation) {
	g := NewPTF()
	s := g.Generate("ptf_objects", n, rand.New(rand.NewSource(seed)))
	t := s.Clone("ptf_objects'")
	return s, t
}
