package data

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSymmetricMatches(t *testing.T) {
	b := Symmetric(1, 2)
	cases := []struct {
		s, tt []float64
		want  bool
	}{
		{[]float64{0, 0}, []float64{1, 2}, true},
		{[]float64{0, 0}, []float64{1.0001, 0}, false},
		{[]float64{0, 0}, []float64{0, -2}, true},
		{[]float64{0, 0}, []float64{0, -2.5}, false},
		{[]float64{5, 5}, []float64{5, 5}, true},
	}
	for _, c := range cases {
		if got := b.Matches(c.s, c.tt); got != c.want {
			t.Errorf("Matches(%v, %v) = %v, want %v", c.s, c.tt, got, c.want)
		}
	}
}

func TestAsymmetricMatches(t *testing.T) {
	// s - 2 <= t <= s + 1
	b := Asymmetric([]float64{2}, []float64{1})
	if !b.Matches([]float64{10}, []float64{8}) {
		t.Error("t = s-2 should match")
	}
	if b.Matches([]float64{10}, []float64{7.9}) {
		t.Error("t = s-2.1 should not match")
	}
	if !b.Matches([]float64{10}, []float64{11}) {
		t.Error("t = s+1 should match")
	}
	if b.Matches([]float64{10}, []float64{11.1}) {
		t.Error("t = s+1.1 should not match")
	}
}

func TestAsymmetricPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Asymmetric accepted mismatched widths")
		}
	}()
	Asymmetric([]float64{1}, []float64{1, 2})
}

func TestUniform(t *testing.T) {
	b := Uniform(3, 2.5)
	if b.Dims() != 3 {
		t.Fatalf("Dims = %d", b.Dims())
	}
	for i := 0; i < 3; i++ {
		if b.Low[i] != 2.5 || b.High[i] != 2.5 {
			t.Errorf("dimension %d widths = %g/%g", i, b.Low[i], b.High[i])
		}
	}
}

func TestBandValidate(t *testing.T) {
	if err := Symmetric(1, 2).Validate(); err != nil {
		t.Errorf("valid band rejected: %v", err)
	}
	if err := (Band{}).Validate(); err == nil {
		t.Error("empty band accepted")
	}
	if err := (Band{Low: []float64{1}, High: []float64{1, 2}}).Validate(); err == nil {
		t.Error("mismatched band accepted")
	}
	if err := (Band{Low: []float64{-1}, High: []float64{1}}).Validate(); err == nil {
		t.Error("negative width accepted")
	}
	if err := (Band{Low: []float64{math.NaN()}, High: []float64{1}}).Validate(); err == nil {
		t.Error("NaN width accepted")
	}
	if err := (Band{Low: []float64{math.Inf(1)}, High: []float64{1}}).Validate(); err == nil {
		t.Error("infinite width accepted")
	}
}

func TestIsEquiJoin(t *testing.T) {
	if !Symmetric(0, 0).IsEquiJoin() {
		t.Error("zero widths should be an equi-join")
	}
	if Symmetric(0, 1).IsEquiJoin() {
		t.Error("non-zero width flagged as equi-join")
	}
}

func TestWidthAccessors(t *testing.T) {
	b := Asymmetric([]float64{1}, []float64{3})
	if b.Width(0) != 4 {
		t.Errorf("Width = %g, want 4", b.Width(0))
	}
	if b.MaxWidth(0) != 3 {
		t.Errorf("MaxWidth = %g, want 3", b.MaxWidth(0))
	}
}

// TestEpsRangeConsistency is the key correctness property the partitioners
// rely on: s matches t exactly when s lies in the ε-range of t, and exactly
// when t lies in the ε-range of s.
func TestEpsRangeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(sv, tv [2]float64, lowRaw, highRaw [2]float64) bool {
		low := [2]float64{math.Abs(lowRaw[0]), math.Abs(lowRaw[1])}
		high := [2]float64{math.Abs(highRaw[0]), math.Abs(highRaw[1])}
		b := Asymmetric(low[:], high[:])
		s := sv[:]
		tt := tv[:]
		matches := b.Matches(s, tt)
		inRangeOfT := b.EpsRangeOfT(tt).containsClosed(s)
		inRangeOfS := b.EpsRangeOfS(s).containsClosed(tt)
		return matches == inRangeOfT && matches == inRangeOfS
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng, Values: func(args []reflect.Value, r *rand.Rand) {
		for i := range args {
			args[i] = reflect.ValueOf([2]float64{r.NormFloat64() * 3, r.NormFloat64() * 3})
		}
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatchesDim(t *testing.T) {
	b := Symmetric(1, 5)
	if !b.MatchesDim(0, 3, 4) || b.MatchesDim(0, 3, 4.5) {
		t.Error("MatchesDim dimension 0 wrong")
	}
	if !b.MatchesDim(1, 0, 5) || b.MatchesDim(1, 0, 6) {
		t.Error("MatchesDim dimension 1 wrong")
	}
}

func TestBandString(t *testing.T) {
	if Symmetric(1).String() == "" {
		t.Error("String() empty")
	}
}

// containsClosed treats the region as closed on both sides, which is the
// correct reading for ε-ranges (they are closed boxes, unlike the half-open
// split-tree regions).
func (r Region) containsClosed(key []float64) bool {
	for i, v := range key {
		if v < r.Lo[i] || v > r.Hi[i] {
			return false
		}
	}
	return true
}
