package data

import (
	"encoding/binary"
	"math"
)

// Portable little-endian pack/unpack paths. These are compiled on every
// target (and unit-tested on little-endian hosts too, see
// TestPortablePackPaths) so big-endian builds are never the first place the
// byte-swapping code runs.

// packFloatsPortable appends vals to dst as little-endian IEEE-754 bytes.
func packFloatsPortable(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// unpackFloatsPortable fills dst from raw; len(raw) must be >= 8*len(dst).
func unpackFloatsPortable(dst []float64, raw []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
}

// packInt64sPortable appends vals to dst as little-endian bytes.
func packInt64sPortable(dst []byte, vals []int64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// unpackInt64sPortable fills dst from raw; len(raw) must be >= 8*len(dst).
func unpackInt64sPortable(dst []int64, raw []byte) {
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
	}
}
