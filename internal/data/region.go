package data

import (
	"fmt"
	"math"
	"strings"
)

// Region is an axis-aligned hyper-rectangle of the join-attribute space,
// closed on the lower side and open on the upper side: [Lo[i], Hi[i]) per
// dimension. Unbounded sides are represented by ±Inf. Half-open intervals
// ensure that recursive splits produce regions that tile the space exactly,
// so every key belongs to exactly one leaf region of a split tree.
type Region struct {
	Lo []float64
	Hi []float64
}

// FullSpace returns the region covering the whole d-dimensional space.
func FullSpace(d int) Region {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 0; i < d; i++ {
		lo[i] = math.Inf(-1)
		hi[i] = math.Inf(1)
	}
	return Region{Lo: lo, Hi: hi}
}

// NewRegion returns a region with the given bounds, copying the slices.
func NewRegion(lo, hi []float64) Region {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("data: region bounds must have equal length, got %d and %d", len(lo), len(hi)))
	}
	l := make([]float64, len(lo))
	h := make([]float64, len(hi))
	copy(l, lo)
	copy(h, hi)
	return Region{Lo: l, Hi: h}
}

// Dims returns the dimensionality of the region.
func (r Region) Dims() int { return len(r.Lo) }

// Clone returns a deep copy of the region.
func (r Region) Clone() Region {
	return NewRegion(r.Lo, r.Hi)
}

// Contains reports whether the key lies in the region (lower-closed,
// upper-open; an upper bound of +Inf is treated as unbounded and therefore
// closed).
func (r Region) Contains(key []float64) bool {
	for i, v := range key {
		if v < r.Lo[i] {
			return false
		}
		if v >= r.Hi[i] && !math.IsInf(r.Hi[i], 1) {
			return false
		}
	}
	return true
}

// Intersects reports whether the region intersects the closed box
// [lo[i], hi[i]] in every dimension. It is used to decide whether a tuple's
// ε-range crosses into a child partition and the tuple must therefore be
// duplicated there.
func (r Region) Intersects(box Region) bool {
	for i := range r.Lo {
		// r is [Lo, Hi); box is treated as closed.
		if box.Hi[i] < r.Lo[i] {
			return false
		}
		if box.Lo[i] >= r.Hi[i] && !math.IsInf(r.Hi[i], 1) {
			return false
		}
	}
	return true
}

// Extent returns Hi[i]-Lo[i] for dimension i (may be +Inf).
func (r Region) Extent(i int) float64 { return r.Hi[i] - r.Lo[i] }

// SplitAt returns the two sub-regions obtained by splitting at value x in
// dimension dim: the "left" child covers [Lo, x) in dim, the "right" child
// covers [x, Hi).
func (r Region) SplitAt(dim int, x float64) (left, right Region) {
	left = r.Clone()
	right = r.Clone()
	left.Hi[dim] = x
	right.Lo[dim] = x
	return left, right
}

// ClampTo returns the region clipped to the bounding box [lo, hi] (closed).
// Infinite sides are replaced by the corresponding bound. It is used to turn
// unbounded split-tree regions into finite boxes for reporting.
func (r Region) ClampTo(lo, hi []float64) Region {
	out := r.Clone()
	for i := range out.Lo {
		if math.IsInf(out.Lo[i], -1) || out.Lo[i] < lo[i] {
			out.Lo[i] = lo[i]
		}
		if math.IsInf(out.Hi[i], 1) || out.Hi[i] > hi[i] {
			out.Hi[i] = hi[i]
		}
	}
	return out
}

// IsSmall reports whether the region is "small" with respect to the band
// condition (Section 4.2): its extent is at most twice the band width εᵢ
// (i.e. at most Low[i]+High[i]) in every dimension, so that virtually all
// tuples in the region join with each other. A region with any unbounded side
// is never small, and with band width zero a dimension is only small once it
// has collapsed to a single value.
func (r Region) IsSmall(b Band) bool {
	for i := range r.Lo {
		if !r.SmallInDim(i, b) {
			return false
		}
	}
	return true
}

// SmallInDim reports whether the region is small in dimension i only, i.e. no
// further recursive splitting in that dimension is allowed.
func (r Region) SmallInDim(i int, b Band) bool {
	if math.IsInf(r.Lo[i], 0) || math.IsInf(r.Hi[i], 0) {
		return false
	}
	if b.Width(i) == 0 {
		return r.Extent(i) <= 0
	}
	return r.Extent(i) <= b.Width(i)
}

// String implements fmt.Stringer.
func (r Region) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := range r.Lo {
		if i > 0 {
			sb.WriteString(" x ")
		}
		fmt.Fprintf(&sb, "[%g,%g)", r.Lo[i], r.Hi[i])
	}
	sb.WriteByte(']')
	return sb.String()
}
