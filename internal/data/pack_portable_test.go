package data

import (
	"math"
	"math/rand"
	"testing"
)

// TestPortablePackPaths forces the byte-swapping implementations that
// big-endian targets rely on, independent of the host's endianness, and
// cross-checks them against the exported (possibly zero-copy) entry points so
// the two can never drift apart.
func TestPortablePackPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 257)
	ids := make([]int64, 257)
	for i := range vals {
		vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		ids[i] = rng.Int63() - rng.Int63()
	}
	vals[0], vals[1], vals[2] = 0, math.Inf(1), math.NaN()

	r := NewRelation("p", 1)
	for _, v := range vals {
		r.Append(v)
	}

	// Floats: portable pack must byte-for-byte match the exported format.
	exported := r.PackKeysLE(0, r.Len())
	portable := packFloatsPortable(nil, vals)
	if len(exported) != len(portable) {
		t.Fatalf("portable float pack length %d, exported %d", len(portable), len(exported))
	}
	for i := range exported {
		if exported[i] != portable[i] {
			t.Fatalf("float pack byte %d differs: %x vs %x", i, exported[i], portable[i])
		}
	}
	back := make([]float64, len(vals))
	unpackFloatsPortable(back, portable)
	for i, v := range vals {
		if math.Float64bits(back[i]) != math.Float64bits(v) {
			t.Fatalf("float %d round-tripped to %v, want %v", i, back[i], v)
		}
	}

	// Int64s: same contract.
	exportedIDs := PackInt64sLE(ids)
	portableIDs := packInt64sPortable(nil, ids)
	if string(exportedIDs) != string(portableIDs) {
		t.Fatal("portable int64 pack differs from exported format")
	}
	backIDs := make([]int64, len(ids))
	unpackInt64sPortable(backIDs, portableIDs)
	for i, v := range ids {
		if backIDs[i] != v {
			t.Fatalf("int64 %d round-tripped to %d, want %d", i, backIDs[i], v)
		}
	}

	// And the portable unpack must accept what the native pack produced.
	r2 := NewRelation("p2", 1)
	if err := r2.AppendKeysLE(portable); err != nil {
		t.Fatalf("AppendKeysLE(portable bytes): %v", err)
	}
	if r2.Len() != len(vals) {
		t.Fatalf("decoded %d tuples, want %d", r2.Len(), len(vals))
	}
	for i, v := range vals {
		if math.Float64bits(r2.KeyAt(i, 0)) != math.Float64bits(v) {
			t.Fatalf("tuple %d = %v, want %v", i, r2.KeyAt(i, 0), v)
		}
	}
}

func TestGrowRowsSetColumn(t *testing.T) {
	r := NewRelation("g", 3)
	r.Append(1, 2, 3)
	base := r.GrowRows(4)
	if base != 1 || r.Len() != 5 {
		t.Fatalf("GrowRows: base=%d len=%d", base, r.Len())
	}
	for d := 0; d < 3; d++ {
		col := []float64{10 + float64(d), 20 + float64(d), 30 + float64(d), 40 + float64(d)}
		r.SetColumn(base, d, col)
	}
	for i := 0; i < 4; i++ {
		for d := 0; d < 3; d++ {
			want := float64((i+1)*10 + d)
			if got := r.KeyAt(base+i, d); got != want {
				t.Fatalf("row %d dim %d = %v, want %v", i, d, got, want)
			}
		}
	}
	slab := r.KeysRange(1, 3)
	if len(slab) != 6 || slab[0] != 10 || slab[5] != 22 {
		t.Fatalf("KeysRange view wrong: %v", slab)
	}
}
