package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFullSpaceContainsEverything(t *testing.T) {
	r := FullSpace(3)
	for _, key := range [][]float64{{0, 0, 0}, {1e300, -1e300, 42}, {math.MaxFloat64, 0, -math.MaxFloat64}} {
		if !r.Contains(key) {
			t.Errorf("FullSpace does not contain %v", key)
		}
	}
}

func TestRegionContainsHalfOpen(t *testing.T) {
	r := NewRegion([]float64{0, 0}, []float64{1, 1})
	if !r.Contains([]float64{0, 0}) {
		t.Error("lower bound should be contained (closed)")
	}
	if r.Contains([]float64{1, 0.5}) {
		t.Error("upper bound should not be contained (open)")
	}
	if r.Contains([]float64{-0.1, 0.5}) {
		t.Error("value below the lower bound contained")
	}
}

func TestNewRegionPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRegion accepted mismatched bounds")
		}
	}()
	NewRegion([]float64{0}, []float64{1, 2})
}

// TestSplitTilesExactly is the invariant the split tree relies on: after a
// split, every key of the parent region belongs to exactly one child.
func TestSplitTilesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(raw [3]float64, splitRaw float64) bool {
		parent := NewRegion([]float64{-10, -10, -10}, []float64{10, 10, 10})
		split := math.Mod(math.Abs(splitRaw), 18) - 9
		left, right := parent.SplitAt(1, split)
		key := []float64{
			math.Mod(raw[0], 10),
			math.Mod(raw[1], 10),
			math.Mod(raw[2], 10),
		}
		if !parent.Contains(key) {
			return true
		}
		inLeft := left.Contains(key)
		inRight := right.Contains(key)
		return inLeft != inRight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRegionIntersects(t *testing.T) {
	r := NewRegion([]float64{0}, []float64{10})
	if !r.Intersects(NewRegion([]float64{-5}, []float64{0})) {
		t.Error("box touching the lower (closed) bound should intersect")
	}
	if r.Intersects(NewRegion([]float64{10}, []float64{12})) {
		t.Error("box starting at the open upper bound should not intersect")
	}
	if !r.Intersects(NewRegion([]float64{9.9}, []float64{20})) {
		t.Error("overlapping box should intersect")
	}
	if r.Intersects(NewRegion([]float64{-5}, []float64{-0.1})) {
		t.Error("box entirely below should not intersect")
	}
}

func TestRegionSmall(t *testing.T) {
	band := Symmetric(1, 2)
	small := NewRegion([]float64{0, 0}, []float64{2, 4}) // extent equals 2ε in both dims
	if !small.IsSmall(band) {
		t.Error("region with extent 2ε in every dimension should be small")
	}
	big := NewRegion([]float64{0, 0}, []float64{2.1, 4})
	if big.IsSmall(band) {
		t.Error("region exceeding 2ε in one dimension should not be small")
	}
	if !big.SmallInDim(1, band) || big.SmallInDim(0, band) {
		t.Error("SmallInDim disagrees with extents")
	}
	unbounded := FullSpace(2)
	if unbounded.IsSmall(band) {
		t.Error("unbounded region cannot be small")
	}
	equi := Symmetric(0, 0)
	if NewRegion([]float64{0, 0}, []float64{1, 1}).IsSmall(equi) {
		t.Error("non-degenerate region cannot be small under an equi-join")
	}
}

func TestRegionClampTo(t *testing.T) {
	r := FullSpace(2)
	clamped := r.ClampTo([]float64{0, 0}, []float64{5, 5})
	if clamped.Lo[0] != 0 || clamped.Hi[1] != 5 {
		t.Errorf("ClampTo produced %v", clamped)
	}
}

func TestRegionExtentAndString(t *testing.T) {
	r := NewRegion([]float64{1}, []float64{4})
	if r.Extent(0) != 3 {
		t.Errorf("Extent = %g", r.Extent(0))
	}
	if r.String() == "" {
		t.Error("String() empty")
	}
	if r.Dims() != 1 {
		t.Errorf("Dims = %d", r.Dims())
	}
}
