package chaos_test

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"bandjoin/internal/chaos"
	"bandjoin/internal/cluster"
	"bandjoin/internal/core"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/onebucket"
	"bandjoin/internal/partition"
)

// testData is the shared small workload: big enough that every worker
// receives several Load chunks (so mid-shuffle faults have calls to hit),
// small enough that the whole matrix stays fast under -race.
func testData() (*data.Relation, *data.Relation, data.Band) {
	s, tt := data.ParetoPair(2, 1.5, 260, 7)
	return s, tt, data.Symmetric(0.25, 0.25)
}

// oraclePairs is the serial in-process result the chaos runs must match
// bit-identically. The pair set is a property of the inputs and the band, not
// of any plan, so the oracle's plan need not match the cluster's.
func oraclePairs(t *testing.T, pt partition.Partitioner, s, tt *data.Relation, band data.Band) []exec.Pair {
	t.Helper()
	opts := exec.DefaultOptions(3)
	opts.CollectPairs = true
	res, err := exec.Run(pt, s, tt, band, opts)
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	return sortedPairs(res.Pairs)
}

func sortedPairs(pairs []exec.Pair) []exec.Pair {
	out := append([]exec.Pair(nil), pairs...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].S != out[b].S {
			return out[a].S < out[b].S
		}
		return out[a].T < out[b].T
	})
	return out
}

func assertPairsEqual(t *testing.T, want, got []exec.Pair) {
	t.Helper()
	got = sortedPairs(got)
	if len(want) != len(got) {
		t.Fatalf("pair count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pair %d: want %v, got %v", i, want[i], got[i])
		}
	}
}

// testDialOptions keeps the failure-detection machinery fast and fully
// deterministic for the matrix: short deadlines, short seeded backoff, no
// background heartbeat (tests that need it enable it explicitly).
func testDialOptions() cluster.DialOptions {
	return cluster.DialOptions{
		CallTimeout:       600 * time.Millisecond,
		JoinTimeout:       600 * time.Millisecond,
		MaxRetries:        2,
		RetryBaseDelay:    5 * time.Millisecond,
		RetryMaxDelay:     40 * time.Millisecond,
		HeartbeatInterval: -1,
		Seed:              7,
	}
}

// startChaosCluster serves three workers — the middle one behind the given
// fault schedule — and connects a coordinator to them.
func startChaosCluster(t *testing.T, sched *chaos.Schedule, dopts cluster.DialOptions) (*cluster.Coordinator, []*chaos.Node) {
	t.Helper()
	nodes := make([]*chaos.Node, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		var s *chaos.Schedule
		if i == 1 {
			s = sched
		}
		n, err := chaos.Start(cluster.NewWorker(fmt.Sprintf("w%d", i)), s)
		if err != nil {
			t.Fatalf("starting chaos node %d: %v", i, err)
		}
		t.Cleanup(n.Stop)
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	coord, err := cluster.DialConfig(addrs, dopts)
	if err != nil {
		t.Fatalf("dialing chaos cluster: %v", err)
	}
	t.Cleanup(coord.Close)
	return coord, nodes
}

// assertNoJobLeaks verifies that every worker still alive eventually holds
// zero transient jobs. Eventually: the coordinator's cleanup Resets race the
// last server-side handlers of an aborted query, so a brief settling window
// is part of the contract, a lingering job is not.
func assertNoJobLeaks(t *testing.T, nodes []*chaos.Node) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for i, n := range nodes {
		if n.Killed() {
			continue // a dead process holds nothing
		}
		for {
			var pong cluster.PingReply
			if err := n.Worker().Ping(&cluster.PingArgs{}, &pong); err != nil {
				t.Fatalf("pinging worker %d: %v", i, err)
			}
			if pong.Jobs == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d leaked %d transient jobs", i, pong.Jobs)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// TestChaosMatrix is the equivalence suite: every seeded fault schedule, on
// both data-plane-relevant partitioners and both the transient and retained
// paths, must yield either pairs bit-identical to the serial oracle or a
// clean error — never a hang, a leaked job, or a wrong answer. Kill faults
// additionally must complete degraded with exactly one lost worker.
func TestChaosMatrix(t *testing.T) {
	s, tt, band := testData()

	partitioners := []struct {
		name string
		mk   func() partition.Partitioner
	}{
		{"recpart-s", func() partition.Partitioner { return core.NewRecPartS() }},
		{"1-bucket", func() partition.Partitioner { return onebucket.New() }},
	}
	faultCases := []struct {
		name     string
		faults   []chaos.Fault
		wantErr  bool
		wantLost int
	}{
		{"drop-load", []chaos.Fault{{Method: "Load", Call: 1, Kind: chaos.Drop}}, false, 0},
		{"drop-join", []chaos.Fault{{Method: "Join", Call: 0, Kind: chaos.Drop}}, false, 0},
		{"delay-load", []chaos.Fault{{Method: "Load", Call: 0, Kind: chaos.Delay, Delay: 30 * time.Millisecond}}, false, 0},
		{"delay-join", []chaos.Fault{{Method: "Join", Call: 0, Kind: chaos.Delay, Delay: 30 * time.Millisecond}}, false, 0},
		{"hang-load", []chaos.Fault{{Method: "Load", Call: 2, Kind: chaos.Hang}}, false, 0},
		{"hang-join", []chaos.Fault{{Method: "Join", Call: 0, Kind: chaos.Hang}}, false, 0},
		{"error-load", []chaos.Fault{{Method: "Load", Call: 1, Kind: chaos.Error}}, true, 0},
		{"error-join", []chaos.Fault{{Method: "Join", Call: 0, Kind: chaos.Error}}, true, 0},
		{"kill-mid-shuffle", []chaos.Fault{{Method: "Load", Call: 1, Kind: chaos.Kill}}, false, 1},
		{"kill-mid-join", []chaos.Fault{{Method: "Join", Call: 0, Kind: chaos.Kill}}, false, 1},
	}

	for _, ptc := range partitioners {
		oracle := oraclePairs(t, ptc.mk(), s, tt, band)
		for _, mode := range []string{"transient", "retained"} {
			for _, fc := range faultCases {
				t.Run(ptc.name+"/"+mode+"/"+fc.name, func(t *testing.T) {
					coord, nodes := startChaosCluster(t, chaos.NewSchedule(fc.faults...), testDialOptions())
					opts := cluster.Options{CollectPairs: true, ChunkSize: 32, Window: 2, Seed: 42}
					if mode == "retained" {
						opts.PlanID = "chaos|" + t.Name()
					}
					ctx := context.Background()

					res, err := coord.Run(ctx, ptc.mk(), s, tt, band, opts)
					if fc.wantErr {
						if err == nil {
							t.Fatalf("fault %v: want a clean error, got success", fc.faults)
						}
						// The fault is consumed; the same query must now
						// succeed with the exact oracle result — the failure
						// left no poisoned state behind.
						res, err = coord.Run(ctx, ptc.mk(), s, tt, band, opts)
						if err != nil {
							t.Fatalf("rerun after injected error: %v", err)
						}
						assertPairsEqual(t, oracle, res.Pairs)
					} else {
						if err != nil {
							t.Fatalf("fault %v: want recovered success, got error: %v", fc.faults, err)
						}
						assertPairsEqual(t, oracle, res.Pairs)
						if res.LostWorkers != fc.wantLost {
							t.Errorf("LostWorkers = %d, want %d", res.LostWorkers, fc.wantLost)
						}
						if fc.wantLost > 0 && !res.Degraded {
							t.Errorf("lost %d workers but Degraded is false", fc.wantLost)
						}
						if fc.wantLost == 0 && res.Degraded {
							t.Errorf("no worker lost but Degraded is true")
						}
					}
					assertNoJobLeaks(t, nodes)
				})
			}
		}
	}
}

// TestChaosSeededSchedules drives generated pseudo-random schedules: whatever
// a seed throws at the cluster, the answer is the oracle's pairs or a clean
// error — and the workers end up with no leaked jobs either way.
func TestChaosSeededSchedules(t *testing.T) {
	s, tt, band := testData()
	oracle := oraclePairs(t, core.NewRecPartS(), s, tt, band)
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			coord, nodes := startChaosCluster(t, chaos.Generate(seed, 4), testDialOptions())
			opts := cluster.Options{CollectPairs: true, ChunkSize: 32, Window: 2, Seed: 42}
			res, err := coord.Run(context.Background(), core.NewRecPartS(), s, tt, band, opts)
			if err != nil {
				t.Logf("seed %d: clean error (acceptable): %v", seed, err)
			} else {
				assertPairsEqual(t, oracle, res.Pairs)
			}
			assertNoJobLeaks(t, nodes)
		})
	}
}

// TestWorkerDeathBetweenLoadAndJoinLeavesNoJobState is the leak regression of
// the failover path: a worker that accepts its partitions and then dies
// before joining must neither fail the query nor leave transient job state on
// the survivors (extending the earlier leak fix for failed runs to the
// recovered ones).
func TestWorkerDeathBetweenLoadAndJoinLeavesNoJobState(t *testing.T) {
	s, tt, band := testData()
	oracle := oraclePairs(t, core.NewRecPartS(), s, tt, band)
	sched := chaos.NewSchedule(chaos.Fault{Method: "Join", Call: 0, Kind: chaos.Kill})
	coord, nodes := startChaosCluster(t, sched, testDialOptions())

	opts := cluster.Options{CollectPairs: true, ChunkSize: 32, Window: 2, Seed: 42}
	res, err := coord.Run(context.Background(), core.NewRecPartS(), s, tt, band, opts)
	if err != nil {
		t.Fatalf("query should have failed over, got: %v", err)
	}
	assertPairsEqual(t, oracle, res.Pairs)
	if !res.Degraded || res.LostWorkers != 1 {
		t.Errorf("Degraded=%v LostWorkers=%d, want degraded with exactly 1 lost worker", res.Degraded, res.LostWorkers)
	}
	if !nodes[1].Killed() {
		t.Fatal("the chaotic worker should have been killed by the schedule")
	}
	assertNoJobLeaks(t, nodes)
}

// TestHeartbeatDetectsDeathAndRevival exercises the health-state lifecycle:
// the background heartbeat demotes a killed worker to down (queries complete
// degraded over the survivors), and a worker revived on the same address is
// promoted back to up and serves again.
func TestHeartbeatDetectsDeathAndRevival(t *testing.T) {
	s, tt, band := testData()
	oracle := oraclePairs(t, core.NewRecPartS(), s, tt, band)
	dopts := testDialOptions()
	dopts.HeartbeatInterval = 40 * time.Millisecond
	dopts.CallTimeout = 300 * time.Millisecond
	coord, nodes := startChaosCluster(t, nil, dopts)

	waitForState := func(want cluster.WorkerState) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for coord.WorkerStates()[1] != want {
			if time.Now().After(deadline) {
				t.Fatalf("worker 1 never became %v (now %v)", want, coord.WorkerStates()[1])
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	addr := nodes[1].Addr()
	nodes[1].Kill()
	waitForState(cluster.StateDown)

	opts := cluster.Options{CollectPairs: true, ChunkSize: 32, Seed: 42}
	res, err := coord.Run(context.Background(), core.NewRecPartS(), s, tt, band, opts)
	if err != nil {
		t.Fatalf("query over survivors: %v", err)
	}
	assertPairsEqual(t, oracle, res.Pairs)
	if !res.Degraded {
		t.Error("query with a down worker should report Degraded")
	}
	if res.LostWorkers != 0 {
		t.Errorf("worker died before the query, LostWorkers = %d, want 0", res.LostWorkers)
	}

	revived, err := chaos.StartOn(addr, cluster.NewWorker("w1-revived"), nil)
	if err != nil {
		t.Fatalf("reviving worker on %s: %v", addr, err)
	}
	t.Cleanup(revived.Stop)
	waitForState(cluster.StateUp)

	res, err = coord.Run(context.Background(), core.NewRecPartS(), s, tt, band, opts)
	if err != nil {
		t.Fatalf("query after revival: %v", err)
	}
	assertPairsEqual(t, oracle, res.Pairs)
	if res.Degraded {
		t.Error("query after revival should not be Degraded")
	}
}

// TestDialConfigMinWorkers pins the degraded-start contract: strict Dial
// refuses a cluster with an unreachable worker, DialConfig with MinWorkers
// starts it and serves correct (degraded) results over the reachable ones.
func TestDialConfigMinWorkers(t *testing.T) {
	s, tt, band := testData()
	oracle := oraclePairs(t, core.NewRecPartS(), s, tt, band)

	nodes := make([]*chaos.Node, 2)
	addrs := make([]string, 3)
	for i := range nodes {
		n, err := chaos.Start(cluster.NewWorker(fmt.Sprintf("w%d", i)), nil)
		if err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		t.Cleanup(n.Stop)
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	// A dead address: bind a port, then close it again.
	dead, err := chaos.Start(cluster.NewWorker("dead"), nil)
	if err != nil {
		t.Fatalf("starting placeholder node: %v", err)
	}
	addrs[2] = dead.Addr()
	dead.Stop()

	if _, err := cluster.Dial(addrs); err == nil {
		t.Fatal("strict Dial should fail with an unreachable worker")
	}

	dopts := testDialOptions()
	dopts.MinWorkers = 2
	coord, err := cluster.DialConfig(addrs, dopts)
	if err != nil {
		t.Fatalf("DialConfig(MinWorkers=2): %v", err)
	}
	t.Cleanup(coord.Close)
	if live := coord.LiveWorkers(); live != 2 {
		t.Fatalf("LiveWorkers = %d, want 2", live)
	}

	res, err := coord.Run(context.Background(), core.NewRecPartS(), s, tt, band,
		cluster.Options{CollectPairs: true, ChunkSize: 32, Seed: 42})
	if err != nil {
		t.Fatalf("degraded-start query: %v", err)
	}
	assertPairsEqual(t, oracle, res.Pairs)
	if !res.Degraded {
		t.Error("query on a degraded-start cluster should report Degraded")
	}
}

// TestContextCancelAbortsHungQuery proves cancellation is the backstop even
// with per-call deadlines disabled: a worker hanging a Load forever cannot
// outlive the query's context, and the abort leaves no job state behind.
func TestContextCancelAbortsHungQuery(t *testing.T) {
	s, tt, band := testData()
	sched := chaos.NewSchedule(chaos.Fault{Method: "Load", Call: 0, Kind: chaos.Hang})
	dopts := testDialOptions()
	dopts.CallTimeout = -1 // ctx is the only bound
	dopts.JoinTimeout = -1
	coord, nodes := startChaosCluster(t, sched, dopts)

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := coord.Run(ctx, core.NewRecPartS(), s, tt, band,
		cluster.Options{CollectPairs: true, ChunkSize: 32, Seed: 42})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("hung query returned success")
	}
	if context.Cause(ctx) == nil {
		t.Fatalf("query failed before the context fired: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, the hung call pinned the query", elapsed)
	}
	nodes[1].Release() // let the hung handler exit before the leak check
	assertNoJobLeaks(t, nodes)
}

// skewedData builds the point-mass workload for the skew cases: roughly half
// of S sits on a single point, so one partition dominates the reduce phase —
// the shape the morsel scheduler absorbs.
func skewedData() (*data.Relation, *data.Relation, data.Band) {
	s, tt := data.ParetoPair(2, 1.5, 260, 7)
	sk := data.NewRelation("S", 2)
	for i := 0; i < s.Len(); i++ {
		if i%2 == 0 {
			sk.Append(0.5, 0.5)
		} else {
			sk.Append(s.Key(i)...)
		}
	}
	return sk, tt, data.Symmetric(0.2, 0.2)
}

// TestChaosMorselSkewedEquivalence extends the chaos matrix with the morsel
// scheduler under skew: on a point-mass workload whose dominant partition is
// striped across workers, join-phase faults (including killing the node that
// holds the fat partition) must still yield pairs bit-identical to the serial
// oracle, for the morsel path and the per-partition oracle path alike, on
// both the transient and the retained lifecycle.
func TestChaosMorselSkewedEquivalence(t *testing.T) {
	s, tt, band := skewedData()
	oracle := oraclePairs(t, core.NewRecPartS(), s, tt, band)

	faultCases := []struct {
		name     string
		faults   []chaos.Fault
		wantLost int
	}{
		{"drop-join", []chaos.Fault{{Method: "Join", Call: 0, Kind: chaos.Drop}}, 0},
		{"kill-mid-join", []chaos.Fault{{Method: "Join", Call: 0, Kind: chaos.Kill}}, 1},
	}
	for _, morselRows := range []int{0, 16, -1} {
		for _, mode := range []string{"transient", "retained"} {
			for _, fc := range faultCases {
				t.Run(fmt.Sprintf("rows=%d/%s/%s", morselRows, mode, fc.name), func(t *testing.T) {
					coord, nodes := startChaosCluster(t, chaos.NewSchedule(fc.faults...), testDialOptions())
					opts := cluster.Options{CollectPairs: true, ChunkSize: 32, Window: 2, Seed: 42, MorselRows: morselRows}
					if mode == "retained" {
						opts.PlanID = "chaos|" + t.Name()
					}
					res, err := coord.Run(context.Background(), core.NewRecPartS(), s, tt, band, opts)
					if err != nil {
						t.Fatalf("fault %v: want recovered success, got error: %v", fc.faults, err)
					}
					assertPairsEqual(t, oracle, res.Pairs)
					if res.LostWorkers != fc.wantLost {
						t.Errorf("LostWorkers = %d, want %d", res.LostWorkers, fc.wantLost)
					}
					assertNoJobLeaks(t, nodes)
				})
			}
		}
	}
}
