// Package chaos provides a deterministic fault-injection harness for the
// cluster plane: a worker served behind an RPC interceptor that drops,
// delays, errors, hangs, or kills specific calls on a seeded schedule. There
// is no wall-clock randomness anywhere — a schedule names the exact k-th
// invocation of an RPC method it perturbs, and the seeded generator derives
// schedules from a seed alone — so every chaos test run sees the identical
// fault sequence.
//
// The package grew out of the ad-hoc fault-injected workers the cluster tests
// used (a wrapper type per failure mode); it replaces them with one reusable
// Node whose behavior is data (a Schedule), not code.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Kind is a fault's failure mode.
type Kind int

const (
	// Error makes the call return an injected application error without
	// reaching the worker. The coordinator must treat it as a clean,
	// non-retriable failure.
	Error Kind = iota
	// Delay stalls the call for Fault.Delay before executing it normally.
	// Exercises slow-worker paths without violating correctness.
	Delay
	// Hang blocks the call until the node is released or stopped, then drops
	// the connection. Exercises the per-call deadline: without one the query
	// would block forever.
	Hang
	// Drop closes the delivering connection before the call executes; the
	// request is lost and the client sees the connection die. The request's
	// fate is ambiguous from the coordinator's side — exactly the failure
	// retries and reshipment must cope with.
	Drop
	// Kill terminates the whole node — listener and every connection — as if
	// the worker process died. Later dials are refused until StartOn revives
	// the address.
	Kill
)

func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Delay:
		return "delay"
	case Hang:
		return "hang"
	case Drop:
		return "drop"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault perturbs one specific RPC invocation.
type Fault struct {
	// Method is the short RPC method name ("Load", "Join", "Seal", "Evict",
	// "Reset", "Ping"), or "*" to match any method.
	Method string
	// Call selects the k-th (0-based) invocation counted per method — or
	// across all methods when Method is "*". The fault fires exactly once.
	Call int
	// Kind is the failure mode.
	Kind Kind
	// Delay is the stall duration of a Delay fault.
	Delay time.Duration
}

func (f Fault) String() string {
	return fmt.Sprintf("%s@%s#%d", f.Kind, f.Method, f.Call)
}

// Schedule is a set of faults armed against a node, with the per-method call
// counters that decide when each fires. A nil Schedule injects nothing.
type Schedule struct {
	mu        sync.Mutex
	faults    []Fault
	fired     []bool
	perMethod map[string]int
	total     int
}

// NewSchedule arms the given faults.
func NewSchedule(faults ...Fault) *Schedule {
	return &Schedule{
		faults:    append([]Fault(nil), faults...),
		fired:     make([]bool, len(faults)),
		perMethod: make(map[string]int),
	}
}

// next consumes one invocation of method and returns the fault to inject on
// it, if any. Counters advance on every invocation whether or not a fault
// matches, so schedules are positional and deterministic.
func (s *Schedule) next(method string) *Fault {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.perMethod[method]
	s.perMethod[method]++
	totalSeq := s.total
	s.total++
	for i := range s.faults {
		if s.fired[i] {
			continue
		}
		f := &s.faults[i]
		if (f.Method == method && f.Call == seq) || (f.Method == "*" && f.Call == totalSeq) {
			s.fired[i] = true
			return f
		}
	}
	return nil
}

// Calls reports how many invocations of method the schedule has observed.
func (s *Schedule) Calls(method string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perMethod[method]
}

// Generate derives a deterministic pseudo-random schedule of n faults from a
// seed: recoverable kinds only (Drop, Delay, Error) against the data-plane
// methods, so a generated schedule can never hang a query or kill the worker
// — it exercises the retry/failover/clean-error envelope. The same seed
// always yields the same schedule.
func Generate(seed int64, n int) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{Drop, Delay, Error}
	methods := []string{"Load", "Join"}
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = Fault{
			Method: methods[rng.Intn(len(methods))],
			Call:   rng.Intn(5),
			Kind:   kinds[rng.Intn(len(kinds))],
			Delay:  time.Duration(1+rng.Intn(40)) * time.Millisecond,
		}
	}
	return NewSchedule(faults...)
}
