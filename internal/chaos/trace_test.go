package chaos_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"bandjoin"
	"bandjoin/internal/chaos"
	"bandjoin/internal/cluster"
)

// TestTraceRecordsKillFailover drives a worker kill through the public engine
// API and checks the query trace tells the story: the query completes
// degraded with one lost worker, at least one failover round, and the fault
// events rebased into the trace's span timeline.
func TestTraceRecordsKillFailover(t *testing.T) {
	sched := chaos.NewSchedule(chaos.Fault{Method: "Join", Call: 0, Kind: chaos.Kill})
	addrs := make([]string, 3)
	for i := range addrs {
		var s *chaos.Schedule
		if i == 1 {
			s = sched
		}
		n, err := chaos.Start(cluster.NewWorker(fmt.Sprintf("w%d", i)), s)
		if err != nil {
			t.Fatalf("starting chaos node %d: %v", i, err)
		}
		t.Cleanup(n.Stop)
		addrs[i] = n.Addr()
	}
	cl, err := bandjoin.ConnectClusterConfig(addrs, bandjoin.ClusterConfig{
		CallTimeout:       600 * time.Millisecond,
		JoinTimeout:       600 * time.Millisecond,
		MaxRetries:        2,
		RetryBaseDelay:    5 * time.Millisecond,
		RetryMaxDelay:     40 * time.Millisecond,
		HeartbeatInterval: -1,
		Seed:              7,
	})
	if err != nil {
		t.Fatalf("ConnectClusterConfig: %v", err)
	}
	defer cl.Close()

	s, tt := bandjoin.Pareto(2, 1.5, 260, 7)
	band := bandjoin.Uniform(2, 0.25)
	opts := bandjoin.Options{Workers: 3, Seed: 7}
	oracle, err := bandjoin.Join(s, tt, band, opts)
	if err != nil {
		t.Fatalf("oracle Join: %v", err)
	}

	engine := cl.NewEngine(bandjoin.EngineOptions{DisableRetention: true})
	defer engine.Close()
	if err := engine.Register("s", s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := engine.Register("t", tt); err != nil {
		t.Fatalf("Register: %v", err)
	}
	res, err := engine.Join(context.Background(), "s", "t", band, opts)
	if err != nil {
		t.Fatalf("Join through kill: %v", err)
	}
	if res.Output != oracle.Output {
		t.Errorf("degraded output = %d, want %d", res.Output, oracle.Output)
	}

	tr := res.Trace
	if tr == nil {
		t.Fatal("result carries no trace")
	}
	if !tr.Degraded || tr.LostWorkers != 1 {
		t.Errorf("trace degraded=%v lost_workers=%d, want degraded with 1 lost", tr.Degraded, tr.LostWorkers)
	}
	if tr.FailoverRounds < 1 {
		t.Errorf("trace failover_rounds = %d, want >= 1", tr.FailoverRounds)
	}
	if tr.Retries < 1 {
		t.Errorf("trace retries = %d, want >= 1", tr.Retries)
	}
	names := make(map[string]bool)
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	if !names["worker_lost"] || !names["join_failover"] {
		t.Errorf("trace spans missing fault events: have %v", tr.Spans)
	}
}
