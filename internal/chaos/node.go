package chaos

import (
	"errors"
	"net"
	"net/rpc"
	"sync"
	"time"

	"bandjoin/internal/cluster"
)

// ErrInjected is the application error an Error fault returns to the
// coordinator.
var ErrInjected = errors.New("chaos: injected fault")

// Node serves one cluster.Worker behind the fault interceptor. Every RPC
// method passes through the node's Schedule before (maybe) reaching the
// worker, and the node owns the listener and every accepted connection so
// Drop, Hang, and Kill faults can sever them mid-call.
type Node struct {
	worker *cluster.Worker
	sched  *Schedule

	released chan struct{}
	relOnce  sync.Once

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	killed bool
}

// Start serves worker on an ephemeral localhost address with sched armed
// (nil for no faults).
func Start(worker *cluster.Worker, sched *Schedule) (*Node, error) {
	return StartOn("127.0.0.1:0", worker, sched)
}

// StartOn serves worker on addr. Reviving a killed worker on its old address
// — the coordinator's heartbeat should find it again — is exactly
// StartOn(dead.Addr(), freshWorker, nil).
func StartOn(addr string, worker *cluster.Worker, sched *Schedule) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		worker:   worker,
		sched:    sched,
		released: make(chan struct{}),
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
	}
	go n.acceptLoop(ln)
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string {
	return n.ln.Addr().String()
}

// Worker returns the wrapped worker (for direct state assertions in tests).
func (n *Node) Worker() *cluster.Worker { return n.worker }

// Killed reports whether a Kill fault (or Kill call) has terminated the node.
func (n *Node) Killed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.killed
}

func (n *Node) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.killed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()
		// One server per connection: the interceptor service is bound to the
		// delivering conn, which Drop/Hang faults need to sever.
		srv := rpc.NewServer()
		_ = srv.RegisterName(cluster.ServiceName, &chaosService{node: n, conn: conn})
		go func() {
			srv.ServeConn(conn)
			n.forget(conn)
		}()
	}
}

func (n *Node) forget(conn net.Conn) {
	n.mu.Lock()
	delete(n.conns, conn)
	n.mu.Unlock()
	conn.Close()
}

// Release unblocks every Hang fault currently blocking (their connections are
// then dropped). Idempotent.
func (n *Node) Release() {
	n.relOnce.Do(func() { close(n.released) })
}

// Kill terminates the node as a process death would: the listener closes, so
// do all live connections, and later dials are refused. Idempotent.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.killed {
		n.mu.Unlock()
		return
	}
	n.killed = true
	ln := n.ln
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.conns = make(map[net.Conn]struct{})
	n.mu.Unlock()
	ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// Stop shuts the node down at test cleanup: hung calls are released, then the
// node is killed. Safe to call on an already-killed node.
func (n *Node) Stop() {
	n.Release()
	n.Kill()
}

// intercept applies the scheduled fault (if any) of one method invocation and
// otherwise executes it.
func (n *Node) intercept(method string, conn net.Conn, invoke func() error) error {
	f := n.sched.next(method)
	if f == nil {
		return invoke()
	}
	switch f.Kind {
	case Error:
		return ErrInjected
	case Delay:
		timer := time.NewTimer(f.Delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-n.released:
		}
		return invoke()
	case Hang:
		// Block until released (or the node dies), then sever the connection:
		// the client must experience a call that never answers, bounded only
		// by its own deadline.
		<-n.released
		conn.Close()
		return ErrInjected
	case Drop:
		// The request is lost before executing; closing the conn is all the
		// client ever observes.
		conn.Close()
		return ErrInjected
	case Kill:
		n.Kill()
		return ErrInjected
	}
	return invoke()
}

// chaosService is the per-connection RPC surface: each method funnels through
// the node's interceptor into the real worker.
type chaosService struct {
	node *Node
	conn net.Conn
}

func (s *chaosService) Load(args *cluster.LoadArgs, reply *cluster.LoadReply) error {
	return s.node.intercept("Load", s.conn, func() error { return s.node.worker.Load(args, reply) })
}

func (s *chaosService) Join(args *cluster.JoinArgs, reply *cluster.JoinReply) error {
	return s.node.intercept("Join", s.conn, func() error { return s.node.worker.Join(args, reply) })
}

func (s *chaosService) Reset(args *cluster.ResetArgs, reply *cluster.ResetReply) error {
	return s.node.intercept("Reset", s.conn, func() error { return s.node.worker.Reset(args, reply) })
}

func (s *chaosService) Seal(args *cluster.SealArgs, reply *cluster.SealReply) error {
	return s.node.intercept("Seal", s.conn, func() error { return s.node.worker.Seal(args, reply) })
}

func (s *chaosService) Evict(args *cluster.EvictArgs, reply *cluster.EvictReply) error {
	return s.node.intercept("Evict", s.conn, func() error { return s.node.worker.Evict(args, reply) })
}

func (s *chaosService) Ping(args *cluster.PingArgs, reply *cluster.PingReply) error {
	return s.node.intercept("Ping", s.conn, func() error { return s.node.worker.Ping(args, reply) })
}

func (s *chaosService) Stats(args *cluster.StatsArgs, reply *cluster.StatsReply) error {
	return s.node.intercept("Stats", s.conn, func() error { return s.node.worker.Stats(args, reply) })
}
