// Command datagen generates the synthetic datasets used by the paper's
// evaluation (and by this repository's examples) as CSV files.
//
// Usage:
//
//	datagen -dataset pareto -z 1.5 -d 3 -n 100000 -out s.csv -seed 1
//	datagen -dataset rv-pareto -z 1.5 -d 3 -n 100000 -out t.csv
//	datagen -dataset ebird -n 200000 -out ebird.csv
//	datagen -dataset cloud -n 150000 -out cloud.csv
//	datagen -dataset ptf -n 300000 -out ptf.csv
//	datagen -dataset uniform -d 2 -lo 0,0 -hi 100,100 -n 50000 -out u.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"bandjoin/internal/data"
)

func main() {
	var (
		dataset = flag.String("dataset", "pareto", "pareto | rv-pareto | ebird | cloud | ptf | uniform")
		n       = flag.Int("n", 100000, "number of tuples")
		d       = flag.Int("d", 3, "number of join attributes (pareto, rv-pareto, uniform)")
		z       = flag.Float64("z", 1.5, "Pareto shape parameter (skew)")
		lo      = flag.String("lo", "", "comma-separated lower bounds (uniform)")
		hi      = flag.String("hi", "", "comma-separated upper bounds (uniform)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output CSV path (default: stdout)")
	)
	flag.Parse()

	gen, err := makeGenerator(*dataset, *d, *z, *lo, *hi, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rel := gen.Generate(*dataset, *n, rand.New(rand.NewSource(*seed)))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *out, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rel.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "writing CSV: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %d tuples (%dD, %s) to %s\n", rel.Len(), rel.Dims(), *dataset, *out)
	}
}

func makeGenerator(dataset string, d int, z float64, lo, hi string, seed int64) (data.Generator, error) {
	switch dataset {
	case "pareto":
		return data.NewPareto(d, z), nil
	case "rv-pareto":
		return data.NewReversePareto(d, z), nil
	case "ebird":
		return data.EBirdSurrogate(seed), nil
	case "cloud":
		return data.CloudSurrogate(seed), nil
	case "ptf":
		return data.NewPTF(), nil
	case "uniform":
		loV, err := parseFloats(lo, d, 0)
		if err != nil {
			return nil, fmt.Errorf("parsing -lo: %w", err)
		}
		hiV, err := parseFloats(hi, d, 1)
		if err != nil {
			return nil, fmt.Errorf("parsing -hi: %w", err)
		}
		return data.NewUniform(loV, hiV), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

func parseFloats(s string, d int, def float64) ([]float64, error) {
	if s == "" {
		out := make([]float64, d)
		for i := range out {
			out[i] = def
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) != d {
		return nil, fmt.Errorf("expected %d values, got %d", d, len(out))
	}
	return out, nil
}
