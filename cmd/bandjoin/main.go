// Command bandjoin runs a distributed band-join between two CSV relations,
// either on the in-process cluster simulator or across RPC workers started
// with cmd/recpartd.
//
// Usage:
//
//	bandjoin -s s.csv -t t.csv -eps 0.5,0.5,10 -workers 8
//	bandjoin -s s.csv -t t.csv -eps 2 -partitioner csio -workers 16
//	bandjoin -s s.csv -t t.csv -eps 1,1 -cluster host1:7070,host2:7070
//	bandjoin -s s.csv -eps 1,1 -cluster host1:7070,host2:7070 -repeat 5
//
// The tool prints the paper's evaluation metrics: total input including
// duplicates (I), the input and output of the most loaded worker (Im, Om),
// the lower bounds, and the relative overheads.
//
// With -repeat N > 1 the query is served N times through a bandjoin.Engine:
// the first query is cold (sample + optimize + shuffle + join) and later
// queries are answered from the engine's caches — on a -cluster run the
// repeats join worker-resident retained partitions and move zero shuffle
// bytes. Per-query wall time and shuffle traffic are printed, demonstrating
// the serving model. -no-retain disables partition retention (repeats still
// reuse the cached sample and plan but reshuffle). -append-frac f holds back
// the trailing f fraction of each relation at registration and streams it in
// through Engine.Append between the repeated queries, demonstrating
// incremental ingestion: each repeat absorbs a delta into the retained
// partitions instead of reshuffling, and the per-append absorption cost is
// printed alongside the per-query timings.
//
// Observability:
//
//	-trace         dumps each query's structured trace (stage spans,
//	               cache-tier outcomes, bytes moved, fault events) as JSON to
//	               stderr
//	-stats         prints the cluster-wide worker counters (Stats RPC) after
//	               the run (-cluster only)
//	-metrics-addr  serves the engine's (and coordinator's) /metrics,
//	               /debug/vars, and /debug/pprof over HTTP while running
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bandjoin"
	"bandjoin/internal/obs"
)

func main() {
	var (
		sPath       = flag.String("s", "", "CSV file of relation S")
		tPath       = flag.String("t", "", "CSV file of relation T (default: same as -s, a self-join)")
		epsFlag     = flag.String("eps", "", "comma-separated band widths, one per join attribute")
		partitioner = flag.String("partitioner", "recpart", "recpart | recpart-s | 1-bucket | grid | grid-star | csio | iejoin")
		workers     = flag.Int("workers", 8, "number of simulated workers (ignored with -cluster)")
		clusterAddr = flag.String("cluster", "", "comma-separated recpartd worker addresses for a real distributed run")
		local       = flag.String("local", "", "local join algorithm: auto | sort-probe | grid-sort-scan | eps-grid | nested-loop")
		morselRows  = flag.Int("morsel-rows", 0, "probe-side rows per join morsel (0 = auto from partition sizes and parallelism, < 0 = per-partition oracle path)")
		seed        = flag.Int64("seed", 1, "random seed")
		verbose     = flag.Bool("v", false, "print per-worker load distribution")

		clusterChunk   = flag.Int("cluster-chunk", 0, "tuples per Load RPC on cluster runs (default 4096)")
		clusterWindow  = flag.Int("cluster-window", 0, "max in-flight Load RPCs per worker on cluster runs (default 4)")
		clusterJoinPar = flag.Int("cluster-join-parallelism", 0, "partition joins each worker runs concurrently (default: worker GOMAXPROCS)")
		clusterSerial  = flag.Bool("cluster-serial", false, "use the serial reference data plane instead of the pipelined streaming shuffle")
		clusterComp    = flag.String("cluster-compression", "", "streaming shuffle wire encoding: auto (default), off, delta, or lz4")

		clusterMinWorkers  = flag.Int("cluster-min-workers", 0, "start the coordinator as long as this many workers are reachable; the rest join via the heartbeat (default: all must be reachable)")
		clusterCallTimeout = flag.Duration("cluster-call-timeout", 0, "per-attempt deadline of control-plane RPCs (default 15s, negative disables)")
		clusterJoinTimeout = flag.Duration("cluster-join-timeout", 0, "per-attempt deadline of Join RPCs (default 2m, negative disables)")
		clusterRetries     = flag.Int("cluster-retries", 0, "transport-error retries per idempotent RPC before failover (default 3, negative disables)")

		plannerPar    = flag.Int("planner-parallelism", 0, "worker pool bound of RecPart's parallel best-split evaluation (0 = GOMAXPROCS)")
		serialPlanner = flag.Bool("serial-planner", false, "use RecPart's serial reference grower (the oracle) instead of the fast planner")

		repeat     = flag.Int("repeat", 1, "serve the query this many times through an engine; repeats are answered from cached samples, plans, and retained partitions")
		noRetain   = flag.Bool("no-retain", false, "with -repeat: disable partition retention (repeats reuse the plan but reshuffle)")
		appendFrac = flag.Float64("append-frac", 0, "with -repeat: serve append-driven — register only the first 1-f fraction of each relation and stream the held-back rows in via Engine.Append between queries")

		trace       = flag.Bool("trace", false, "dump each query's structured trace as JSON to stderr")
		stats       = flag.Bool("stats", false, "print the cluster-wide worker stats after the run (requires -cluster)")
		metricsAddr = flag.String("metrics-addr", "", "HTTP address serving /metrics, /debug/vars, and /debug/pprof while the tool runs (empty disables)")
	)
	flag.Parse()

	if *sPath == "" || *epsFlag == "" {
		fmt.Fprintln(os.Stderr, "usage: bandjoin -s S.csv [-t T.csv] -eps e1,e2,... [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	s, err := readRelation("S", *sPath)
	if err != nil {
		fatal(err)
	}
	t := s
	if *tPath != "" && *tPath != *sPath {
		t, err = readRelation("T", *tPath)
		if err != nil {
			fatal(err)
		}
	}

	eps, err := parseEps(*epsFlag)
	if err != nil {
		fatal(err)
	}
	band := bandjoin.Symmetric(eps...)

	pt, err := pickPartitioner(*partitioner, *seed, *plannerPar, *serialPlanner)
	if err != nil {
		fatal(err)
	}
	opts := bandjoin.Options{
		Workers:                *workers,
		Partitioner:            pt,
		LocalAlgorithm:         *local,
		MorselRows:             *morselRows,
		Seed:                   *seed,
		ClusterChunkSize:       *clusterChunk,
		ClusterWindow:          *clusterWindow,
		ClusterJoinParallelism: *clusterJoinPar,
		ClusterSerial:          *clusterSerial,
		ClusterCompression:     *clusterComp,
	}

	if *repeat < 1 {
		fatal(fmt.Errorf("-repeat must be >= 1, got %d", *repeat))
	}
	if *appendFrac < 0 || *appendFrac >= 1 {
		fatal(fmt.Errorf("-append-frac must be in [0, 1), got %g", *appendFrac))
	}
	if *appendFrac > 0 && *repeat < 2 {
		fatal(fmt.Errorf("-append-frac needs -repeat >= 2 (appends land between queries)"))
	}

	var cl *bandjoin.Cluster
	if *clusterAddr != "" {
		cl, err = bandjoin.ConnectClusterConfig(strings.Split(*clusterAddr, ","), bandjoin.ClusterConfig{
			MinWorkers:  *clusterMinWorkers,
			CallTimeout: *clusterCallTimeout,
			JoinTimeout: *clusterJoinTimeout,
			MaxRetries:  *clusterRetries,
			Seed:        *seed,
		})
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
	}

	// Every run is served through one Engine (single queries included — they
	// disable retention, matching the throwaway-engine behavior of
	// bandjoin.Join), so the engine's metrics registry and per-query traces
	// exist on every path.
	eopts := bandjoin.EngineOptions{DisableRetention: *noRetain || *repeat == 1}
	var engine *bandjoin.Engine
	if cl != nil {
		engine = cl.NewEngine(eopts)
	} else {
		engine = bandjoin.NewEngine(eopts)
	}
	defer engine.Close()

	if *metricsAddr != "" {
		regs := []*obs.Registry{engine.Metrics()}
		if cl != nil {
			regs = append(regs, cl.Metrics())
		}
		addr, stop, err := obs.Serve(*metricsAddr, regs...)
		if err != nil {
			fatal(fmt.Errorf("metrics listener on %s: %w", *metricsAddr, err))
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "bandjoin: metrics on http://%s/metrics\n", addr)
	}

	start := time.Now()
	res, err := serveQueries(engine, cl != nil, s, t, band, opts, *repeat, *appendFrac, *trace)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("partitioner        %s\n", res.Partitioner)
	fmt.Printf("workers            %d\n", res.Workers)
	fmt.Printf("partitions         %d\n", res.Partitions)
	fmt.Printf("input |S|+|T|      %d\n", res.InputS+res.InputT)
	fmt.Printf("total input I      %d  (duplication overhead %.2f%%)\n", res.TotalInput, 100*res.DupOverhead)
	fmt.Printf("output             %d\n", res.Output)
	fmt.Printf("max worker Im/Om   %d / %d  (load overhead %.2f%% over the Lemma 1 bound)\n", res.Im, res.Om, 100*res.LoadOverhead)
	fmt.Printf("optimization time  %v\n", res.OptimizationTime.Round(time.Millisecond))
	fmt.Printf("shuffle time       %v\n", res.ShuffleTime.Round(time.Millisecond))
	if res.ShuffleRPCs > 0 {
		fmt.Printf("shuffle wire       %d Load RPCs, %.1f MB\n", res.ShuffleRPCs, float64(res.ShuffleBytes)/(1<<20))
	}
	fmt.Printf("join makespan      %v\n", res.Makespan.Round(time.Millisecond))
	fmt.Printf("wall time          %v\n", elapsed.Round(time.Millisecond))
	if res.Degraded || res.Retries > 0 {
		fmt.Printf("fault tolerance    degraded=%v lost_workers=%d retries=%d\n", res.Degraded, res.LostWorkers, res.Retries)
	}
	if *verbose {
		fmt.Println("per-worker input / output:")
		for w := range res.WorkerInput {
			fmt.Printf("  worker %2d: %10d / %10d\n", w, res.WorkerInput[w], res.WorkerOutput[w])
		}
	}
	if *stats {
		if cl == nil {
			fmt.Fprintln(os.Stderr, "bandjoin: -stats requires -cluster; skipping")
		} else {
			fmt.Print(cl.Stats(context.Background()).String())
		}
	}
}

// serveQueries runs the query n times through the engine, printing per-query
// wall time and shuffle traffic when n > 1, and returns the last result. The
// first query is cold; repeats are served from the engine's caches. With
// appendFrac > 0 the engine is registered with only the leading 1-f fraction
// of each relation and the held-back suffix streams in through Engine.Append
// between queries, so the repeats demonstrate delta absorption instead of pure
// cache hits. With trace set, each query's structured trace is dumped as JSON
// to stderr.
func serveQueries(engine *bandjoin.Engine, onCluster bool, s, t *bandjoin.Relation, band bandjoin.Band, opts bandjoin.Options, n int, appendFrac float64, trace bool) (*bandjoin.Result, error) {
	baseS, baseT := s, t
	var deltaS, deltaT *bandjoin.Relation
	if appendFrac > 0 {
		cutS := int(float64(s.Len()) * (1 - appendFrac))
		cutT := int(float64(t.Len()) * (1 - appendFrac))
		baseS = s.Slice(s.Name(), 0, cutS)
		baseT = t.Slice(t.Name(), 0, cutT)
		deltaS = s.Slice(s.Name(), cutS, s.Len())
		deltaT = t.Slice(t.Name(), cutT, t.Len())
	}
	if err := engine.Register("s", baseS); err != nil {
		return nil, err
	}
	if err := engine.Register("t", baseT); err != nil {
		return nil, err
	}
	ctx := context.Background()
	var res *bandjoin.Result
	var coldWall time.Duration
	for q := 0; q < n; q++ {
		if q > 0 && appendFrac > 0 {
			if err := appendBatch(ctx, engine, deltaS, deltaT, q-1, n-1); err != nil {
				return nil, err
			}
		}
		qStart := time.Now()
		var err error
		res, err = engine.Join(ctx, "s", "t", band, opts)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", q+1, err)
		}
		wall := time.Since(qStart)
		if trace && res.Trace != nil {
			if js, jerr := res.Trace.JSON(); jerr == nil {
				fmt.Fprintf(os.Stderr, "%s\n", js)
			}
		}
		if n == 1 {
			break
		}
		tier := "warm"
		if q == 0 {
			tier, coldWall = "cold", wall
		}
		line := fmt.Sprintf("query %2d (%s): wall %v  opt %v  shuffle %v",
			q+1, tier, wall.Round(time.Millisecond), res.OptimizationTime.Round(time.Millisecond),
			res.ShuffleTime.Round(time.Millisecond))
		if onCluster {
			line += fmt.Sprintf("  wire %d RPCs / %.1f MB", res.ShuffleRPCs, float64(res.ShuffleBytes)/(1<<20))
		}
		if q > 0 && wall > 0 {
			line += fmt.Sprintf("  speedup %.2fx", float64(coldWall)/float64(wall))
		}
		fmt.Println(line)
	}
	return res, nil
}

// appendBatch streams batch i (of batches) of the held-back deltas into the
// engine's "s" and "t" datasets and prints the append cost.
func appendBatch(ctx context.Context, engine *bandjoin.Engine, deltaS, deltaT *bandjoin.Relation, i, batches int) error {
	slice := func(r *bandjoin.Relation) *bandjoin.Relation {
		per := (r.Len() + batches - 1) / batches
		lo := i * per
		hi := lo + per
		if hi > r.Len() {
			hi = r.Len()
		}
		if lo >= hi {
			return nil
		}
		return r.Slice(r.Name(), lo, hi)
	}
	bS, bT := slice(deltaS), slice(deltaT)
	aStart := time.Now()
	if bS != nil {
		if err := engine.Append(ctx, "s", bS); err != nil {
			return fmt.Errorf("appending to s: %w", err)
		}
	}
	if bT != nil {
		if err := engine.Append(ctx, "t", bT); err != nil {
			return fmt.Errorf("appending to t: %w", err)
		}
	}
	rows := 0
	if bS != nil {
		rows += bS.Len()
	}
	if bT != nil {
		rows += bT.Len()
	}
	fmt.Printf("append %2d: +%d rows absorbed in %v\n", i+1, rows, time.Since(aStart).Round(time.Millisecond))
	return nil
}

func readRelation(name, path string) (*bandjoin.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening %s: %w", path, err)
	}
	defer f.Close()
	return bandjoin.ReadCSV(name, f)
}

func parseEps(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing band width %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func pickPartitioner(name string, seed int64, plannerPar int, serialPlanner bool) (bandjoin.Partitioner, error) {
	switch strings.ToLower(name) {
	case "recpart":
		return bandjoin.RecPartWith(bandjoin.RecPartOptions{
			Symmetric: true, Seed: seed, PlannerParallelism: plannerPar, SerialPlanner: serialPlanner,
		}), nil
	case "recpart-s":
		return bandjoin.RecPartWith(bandjoin.RecPartOptions{
			Seed: seed, PlannerParallelism: plannerPar, SerialPlanner: serialPlanner,
		}), nil
	case "1-bucket", "onebucket":
		return bandjoin.OneBucket(), nil
	case "grid", "grid-eps":
		return bandjoin.GridEps(), nil
	case "grid-star", "grid*":
		return bandjoin.GridStar(), nil
	case "csio":
		return bandjoin.CSIO(), nil
	case "iejoin":
		return bandjoin.IEJoin(), nil
	default:
		return nil, fmt.Errorf("unknown partitioner %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bandjoin:", err)
	os.Exit(1)
}
