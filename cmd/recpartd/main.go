// Command recpartd runs a band-join worker: it listens for RPC connections
// from a coordinator (cmd/bandjoin -cluster host:port,...), receives partition
// data, executes local band-joins on request, and reports the results.
//
// Usage:
//
//	recpartd -listen :7070 -name worker-1
//	recpartd -listen :7070 -max-parallelism 4
//	recpartd -listen :7070 -max-retained 16
//	recpartd -listen :7070 -drain-timeout 60s
//	recpartd -listen :7070 -metrics-addr :9090
//
// With -metrics-addr the worker serves its observability surface over HTTP:
// /metrics (Prometheus text format: load/join counters, retained bytes, pool
// occupancy, latency histograms), /debug/vars (expvar JSON), and
// /debug/pprof/* (live profiling).
//
// Besides transient per-query job state, the worker keeps a retained-plan
// registry serving engine queries (bandjoin.Engine): shuffled partitions stay
// resident — presorted, with prebuilt join structures — under their plan
// fingerprint, so repeated queries join with zero shuffle bytes.
// -max-retained bounds that registry; the least-recently-sealed plan is
// evicted when the cap is exceeded (coordinators reshuffle it transparently
// if it is queried again).
//
// On SIGINT or SIGTERM the worker shuts down gracefully: it stops accepting
// connections, rejects new Load/Join/Seal work (coordinators see the refusals
// as clean errors and fail over), drains the RPCs already in flight for up to
// -drain-timeout, logs the retained-plan count it is taking down, and exits 0.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bandjoin/internal/cluster"
	"bandjoin/internal/obs"
)

func main() {
	var (
		listen       = flag.String("listen", ":7070", "TCP address to listen on")
		name         = flag.String("name", "", "worker name reported to the coordinator (default: hostname)")
		maxPar       = flag.Int("max-parallelism", 0, "cap on concurrent partition joins per job, regardless of what coordinators request (default: GOMAXPROCS)")
		maxRetained  = flag.Int("max-retained", 0, "cap on resident retained plans (engine warm-partition cache); exceeding it evicts the least-recently-sealed plan, and coordinators transparently reshuffle evicted plans (default: unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGINT/SIGTERM shutdown waits for in-flight Load/Join RPCs to finish before exiting anyway (0 waits indefinitely)")
		metricsAddr  = flag.String("metrics-addr", "", "HTTP address serving /metrics (Prometheus), /debug/vars (expvar), and /debug/pprof (empty disables)")
	)
	flag.Parse()

	workerName := *name
	if workerName == "" {
		hn, err := os.Hostname()
		if err != nil {
			hn = "worker"
		}
		workerName = hn
	}

	w := cluster.NewWorker(workerName)
	w.SetMaxParallelism(*maxPar)
	w.SetMaxRetained(*maxRetained)

	if *metricsAddr != "" {
		addr, stop, err := obs.Serve(*metricsAddr, w.Metrics())
		if err != nil {
			log.Fatalf("recpartd: metrics listener on %s: %v", *metricsAddr, err)
		}
		defer stop()
		log.Printf("recpartd: metrics on http://%s/metrics", addr)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("recpartd: listening on %s: %v", *listen, err)
	}
	log.Printf("band-join worker %s listening on %s", workerName, ln.Addr())

	done := make(chan error, 1)
	go func() { done <- cluster.Serve(w, ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("recpartd: %v", err)
		}
	case sig := <-sigs:
		log.Printf("recpartd: received %v, draining (timeout %v)", sig, *drainTimeout)
		// Stop accepting first; connections already established keep being
		// served until their in-flight calls drain (new data-plane calls on
		// them are rejected by the draining gate).
		ln.Close()
		if w.Drain(*drainTimeout) {
			log.Printf("recpartd: drained cleanly, shutting down with %d retained plans resident", w.Retained())
		} else {
			log.Printf("recpartd: drain timeout elapsed with work in flight, shutting down with %d retained plans resident", w.Retained())
		}
	}
}
