// Command recpartd runs a band-join worker: it listens for RPC connections
// from a coordinator (cmd/bandjoin -workers host:port,...), receives partition
// data, executes local band-joins, and reports the results.
//
// Usage:
//
//	recpartd -listen :7070 -name worker-1
package main

import (
	"flag"
	"log"
	"os"

	"bandjoin/internal/cluster"
)

func main() {
	var (
		listen = flag.String("listen", ":7070", "TCP address to listen on")
		name   = flag.String("name", "", "worker name reported to the coordinator (default: hostname)")
	)
	flag.Parse()

	workerName := *name
	if workerName == "" {
		hn, err := os.Hostname()
		if err != nil {
			hn = "worker"
		}
		workerName = hn
	}
	if err := cluster.ListenAndServe(workerName, *listen); err != nil {
		log.Fatalf("recpartd: %v", err)
	}
}
