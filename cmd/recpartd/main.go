// Command recpartd runs a band-join worker: it listens for RPC connections
// from a coordinator (cmd/bandjoin -cluster host:port,...), receives partition
// data, executes local band-joins on request, and reports the results.
//
// Usage:
//
//	recpartd -listen :7070 -name worker-1
//	recpartd -listen :7070 -max-parallelism 4
package main

import (
	"flag"
	"log"
	"os"

	"bandjoin/internal/cluster"
)

func main() {
	var (
		listen = flag.String("listen", ":7070", "TCP address to listen on")
		name   = flag.String("name", "", "worker name reported to the coordinator (default: hostname)")
		maxPar = flag.Int("max-parallelism", 0, "cap on concurrent partition joins per job, regardless of what coordinators request (default: GOMAXPROCS)")
	)
	flag.Parse()

	workerName := *name
	if workerName == "" {
		hn, err := os.Hostname()
		if err != nil {
			hn = "worker"
		}
		workerName = hn
	}

	w := cluster.NewWorker(workerName)
	w.SetMaxParallelism(*maxPar)
	if err := cluster.ListenAndServe(w, *listen); err != nil {
		log.Fatalf("recpartd: %v", err)
	}
}
