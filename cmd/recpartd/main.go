// Command recpartd runs a band-join worker: it listens for RPC connections
// from a coordinator (cmd/bandjoin -cluster host:port,...), receives partition
// data, executes local band-joins on request, and reports the results.
//
// Usage:
//
//	recpartd -listen :7070 -name worker-1
//	recpartd -listen :7070 -max-parallelism 4
//	recpartd -listen :7070 -max-retained 16
//
// Besides transient per-query job state, the worker keeps a retained-plan
// registry serving engine queries (bandjoin.Engine): shuffled partitions stay
// resident — presorted, with prebuilt join structures — under their plan
// fingerprint, so repeated queries join with zero shuffle bytes.
// -max-retained bounds that registry; the least-recently-sealed plan is
// evicted when the cap is exceeded (coordinators reshuffle it transparently
// if it is queried again).
package main

import (
	"flag"
	"log"
	"os"

	"bandjoin/internal/cluster"
)

func main() {
	var (
		listen      = flag.String("listen", ":7070", "TCP address to listen on")
		name        = flag.String("name", "", "worker name reported to the coordinator (default: hostname)")
		maxPar      = flag.Int("max-parallelism", 0, "cap on concurrent partition joins per job, regardless of what coordinators request (default: GOMAXPROCS)")
		maxRetained = flag.Int("max-retained", 0, "cap on resident retained plans (engine warm-partition cache); exceeding it evicts the least-recently-sealed plan, and coordinators transparently reshuffle evicted plans (default: unlimited)")
	)
	flag.Parse()

	workerName := *name
	if workerName == "" {
		hn, err := os.Hostname()
		if err != nil {
			hn = "worker"
		}
		workerName = hn
	}

	w := cluster.NewWorker(workerName)
	w.SetMaxParallelism(*maxPar)
	w.SetMaxRetained(*maxRetained)
	if err := cluster.ListenAndServe(w, *listen); err != nil {
		log.Fatalf("recpartd: %v", err)
	}
}
