// Command experiments regenerates the paper's evaluation tables and figures,
// and benchmarks the execution pipeline itself.
//
// Usage:
//
//	experiments -list
//	experiments -table 2b
//	experiments -table all -workers 30 -tuples 40000 -csv results.csv
//	experiments -pipeline BENCH_pipeline.json -pipeline-tuples 1000000
//	experiments -cluster BENCH_cluster.json -cluster-tuples 500000 -cluster-workers 2
//	experiments -append BENCH_append.json -append-tuples 500000 -append-delta 0.10
//
// Each table identifier corresponds to one paper artifact (see DESIGN.md for
// the full index). Output is an aligned text table; -csv additionally exports
// the raw per-method measurements. -pipeline runs the serial-reference vs
// parallel execution-pipeline comparison (shuffle and join throughput,
// allocations per local join, speedups) and writes the machine-readable
// report to the given path. -cluster runs the distributed data-plane
// comparison (serial coordinator vs pipelined streaming shuffle + parallel
// worker joins) over in-process RPC workers and writes BENCH_cluster.json.
// -append runs the incremental-ingestion benchmark (Engine.Append of a delta
// versus a full rebuild, warm-query latency under sustained appends, and the
// drift-triggered re-partition cost) and writes BENCH_append.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"bandjoin/internal/bench"
)

// parseProcsList parses a comma-separated GOMAXPROCS list ("" → nil).
func parseProcsList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var procs []int
	for _, field := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("invalid procs value %q in %q", field, s)
		}
		procs = append(procs, p)
	}
	return procs, nil
}

func main() {
	var (
		table   = flag.String("table", "", "experiment id to run (e.g. 2a, 3, fig4) or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		workers = flag.Int("workers", 0, "number of simulated workers (default 30)")
		tuples  = flag.Int("tuples", 0, "per-relation input size of the baseline configuration (default 40000)")
		sample  = flag.Int("sample", 0, "optimization-phase input sample size (default 6000)")
		seed    = flag.Int64("seed", 1, "random seed")
		csvPath = flag.String("csv", "", "also export raw measurements to this CSV file")
		quick   = flag.Bool("quick", false, "use a very small configuration (smoke test)")

		pipelinePath   = flag.String("pipeline", "", "run the execution-pipeline benchmark and write the JSON report to this path")
		pipelineTuples = flag.Int("pipeline-tuples", 0, "per-relation input size of the pipeline benchmark (default 1000000)")

		optimizerPath    = flag.String("optimizer", "", "run the planner benchmark (fast RecPart grower vs the serial oracle across sample sizes) and write the JSON report to this path")
		optimizerTuples  = flag.Int("optimizer-tuples", 0, "per-relation input size of the optimizer benchmark (default 200000)")
		optimizerDims    = flag.Int("optimizer-dims", 0, "number of join attributes of the optimizer benchmark (default 3)")
		optimizerWorkers = flag.Int("optimizer-workers", 0, "planning-time worker count of the optimizer benchmark (default 30)")
		optimizerRounds  = flag.Int("optimizer-rounds", 0, "rounds per grower and sample size, fastest kept (default 5)")

		enginePath    = flag.String("engine", "", "run the engine-throughput benchmark (cold vs warm-plan vs warm-partitions on the cluster plane) and write the JSON report to this path")
		engineTuples  = flag.Int("engine-tuples", 0, "per-relation input size of the engine benchmark (default 500000)")
		engineWorkers = flag.Int("engine-workers", 0, "number of in-process RPC workers of the engine benchmark (default 2)")
		engineDims    = flag.Int("engine-dims", 0, "number of join attributes of the engine benchmark (default 8)")
		engineEps     = flag.Float64("engine-eps", 0, "symmetric band width of the engine benchmark (default 0.003)")
		engineRounds  = flag.Int("engine-rounds", 0, "rounds per serving tier, fastest kept (default 3)")

		appendPath    = flag.String("append", "", "run the incremental-ingestion benchmark (Engine.Append vs full rebuild, sustained-append query latency, drift re-partition cost) and write the JSON report to this path")
		appendTuples  = flag.Int("append-tuples", 0, "per-relation base size of the append benchmark (default 500000)")
		appendWorkers = flag.Int("append-workers", 0, "number of in-process RPC workers of the append benchmark (default 2)")
		appendDims    = flag.Int("append-dims", 0, "number of join attributes of the append benchmark (default 8)")
		appendEps     = flag.Float64("append-eps", 0, "symmetric band width of the append benchmark (default 0.003)")
		appendDelta   = flag.Float64("append-delta", 0, "appended delta as a fraction of the base (default 0.10)")
		appendBatches = flag.Int("append-batches", 0, "batches the delta is streamed in during the sustained phase (default 5)")
		appendRounds  = flag.Int("append-rounds", 0, "rounds per one-shot phase, fastest kept (default 3)")

		clusterPath     = flag.String("cluster", "", "run the distributed data-plane benchmark and write the JSON report to this path")
		clusterTuples   = flag.Int("cluster-tuples", 0, "per-relation input size of the cluster benchmark (default 500000)")
		clusterWorkers  = flag.Int("cluster-workers", 0, "number of in-process RPC workers of the cluster benchmark (default 2)")
		clusterChunk    = flag.Int("cluster-chunk", 0, "tuples per Load RPC (default 16384)")
		clusterWindow   = flag.Int("cluster-window", 0, "max in-flight Load RPCs per worker on the streaming plane (default 4)")
		clusterDims     = flag.Int("cluster-dims", 0, "number of join attributes of the cluster benchmark (default 8)")
		clusterEps      = flag.Float64("cluster-eps", 0, "symmetric band width of the cluster benchmark (default 0.003)")
		clusterComp     = flag.String("cluster-compression", "", "streaming wire encoding of the cluster benchmark: auto (default), delta, or lz4; off is always measured as the baseline")
		clusterDecimals = flag.Int("cluster-decimals", -1, "decimal places benchmark keys are quantized to, PTF-style fixed precision (default 3; negative values other than the -1 sentinel disable quantization)")

		scalingPath    = flag.String("scaling", "", "run the GOMAXPROCS scaling sweep (shuffle, join, planner, engine tiers) and write the JSON report to this path")
		scalingTuples  = flag.Int("scaling-tuples", 0, "per-relation input size of the scaling sweep (default 250000)")
		scalingDims    = flag.Int("scaling-dims", 0, "number of join attributes of the scaling sweep (default 4)")
		scalingWorkers = flag.Int("scaling-workers", 0, "simulated worker count of the scaling sweep (default 8)")
		scalingRounds  = flag.Int("scaling-rounds", 0, "rounds per tier and procs value, fastest kept (default 3)")
		scalingProcs   = flag.String("scaling-procs", "", "GOMAXPROCS sweep: a single value caps the doubling sweep (default NumCPU); a comma list like 1,2,4,8 forces those exact values, even above NumCPU")

		skewPath    = flag.String("skew", "", "run the skewed-workload benchmark (morsel-driven vs per-partition reduce phase on a point-mass workload) and write the JSON report to this path")
		skewTuples  = flag.Int("skew-tuples", 0, "per-relation input size of the skew benchmark (default 150000)")
		skewMass    = flag.Float64("skew-mass", 0, "fraction of S concentrated on a single point (default 0.5)")
		skewWorkers = flag.Int("skew-workers", 0, "simulated worker count of the skew benchmark (default 8)")
		skewRounds  = flag.Int("skew-rounds", 0, "rounds per path and procs value, fastest kept (default 3)")
		skewMorsel  = flag.Int("skew-morsel-rows", 0, "morsel grain of the morsel path (default 0 = auto)")
		skewProcs   = flag.String("skew-procs", "", "comma-separated GOMAXPROCS list to measure at (default: current setting)")
	)
	flag.Parse()

	if *optimizerPath != "" {
		cfg := bench.DefaultOptimizerConfig()
		if *optimizerTuples > 0 {
			cfg.Tuples = *optimizerTuples
		}
		if *optimizerDims > 0 {
			cfg.Dims = *optimizerDims
		}
		if *optimizerWorkers > 0 {
			cfg.Workers = *optimizerWorkers
		}
		if *optimizerRounds > 0 {
			cfg.Rounds = *optimizerRounds
		}
		cfg.Seed = *seed
		f, err := os.Create(*optimizerPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *optimizerPath, err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Printf("optimizer benchmark: %d x %d tuples, %dD, band %g, w=%d, sample sizes %v...\n",
			cfg.Tuples, cfg.Tuples, cfg.Dims, cfg.Eps, cfg.Workers, cfg.SampleSizes)
		rep, err := bench.RunOptimizer(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optimizer benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteOptimizerJSON(f, rep); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *optimizerPath, err)
			os.Exit(1)
		}
		for _, row := range rep.Rows {
			fmt.Printf("%-9s sample %6d: serial %7.2fms / fast %7.2fms = %.2fx; allocs %6.0f -> %5.0f (%.0fx); identical=%v\n",
				row.Partitioner, row.SampleSize,
				1000*row.Serial.WallSeconds, 1000*row.Fast.WallSeconds, row.Speedup,
				row.Serial.AllocsPerOp, row.Fast.AllocsPerOp, row.AllocReduction, row.PlansIdentical)
		}
		fmt.Printf("report written to %s\n", *optimizerPath)
		return
	}

	if *enginePath != "" {
		cfg := bench.DefaultEngineConfig()
		if *engineTuples > 0 {
			cfg.Tuples = *engineTuples
		}
		if *engineWorkers > 0 {
			cfg.Workers = *engineWorkers
		}
		if *engineDims > 0 {
			cfg.Dims = *engineDims
		}
		if *engineEps > 0 {
			cfg.Eps = *engineEps
		}
		if *engineRounds > 0 {
			cfg.Rounds = *engineRounds
		}
		cfg.Seed = *seed
		f, err := os.Create(*enginePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *enginePath, err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Printf("engine benchmark: %d x %d tuples, %dD, band %g, %d in-process workers...\n",
			cfg.Tuples, cfg.Tuples, cfg.Dims, cfg.Eps, cfg.Workers)
		rep, err := bench.RunEngine(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "engine benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteEngineJSON(f, rep); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *enginePath, err)
			os.Exit(1)
		}
		fmt.Printf("cold %.2fs/query (opt %.2fs + shuffle %.2fs + join %.2fs)\n",
			rep.Cold.WallSeconds, rep.Cold.OptimizationSeconds, rep.Cold.ShuffleSeconds, rep.Cold.JoinSeconds)
		fmt.Printf("warm-plan %.2fs/query (shuffle %.2fs), warm-partitions %.2fs/query (shuffle bytes %d)\n",
			rep.WarmPlan.WallSeconds, rep.WarmPlan.ShuffleSeconds, rep.WarmPartitions.WallSeconds, rep.WarmPartitions.ShuffleBytes)
		fmt.Printf("speedups: warm-plan %.2fx, warm-partitions %.2fx; pairs checked %d identical=%v; report written to %s\n",
			rep.SpeedupWarmPlan, rep.SpeedupWarmPartitions, rep.PairsChecked, rep.PairsIdentical, *enginePath)
		return
	}

	if *appendPath != "" {
		cfg := bench.DefaultAppendConfig()
		if *appendTuples > 0 {
			cfg.Tuples = *appendTuples
		}
		if *appendWorkers > 0 {
			cfg.Workers = *appendWorkers
		}
		if *appendDims > 0 {
			cfg.Dims = *appendDims
		}
		if *appendEps > 0 {
			cfg.Eps = *appendEps
		}
		if *appendDelta > 0 {
			cfg.DeltaFraction = *appendDelta
		}
		if *appendBatches > 0 {
			cfg.Batches = *appendBatches
		}
		if *appendRounds > 0 {
			cfg.Rounds = *appendRounds
		}
		cfg.Seed = *seed
		f, err := os.Create(*appendPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *appendPath, err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Printf("append benchmark: %d + %.0f%% tuples per relation, %dD, band %g, %d in-process workers...\n",
			cfg.Tuples, 100*cfg.DeltaFraction, cfg.Dims, cfg.Eps, cfg.Workers)
		rep, err := bench.RunAppend(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "append benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteAppendJSON(f, rep); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *appendPath, err)
			os.Exit(1)
		}
		fmt.Printf("full rebuild %.2fs; append %.2fs (%.0f tuples/s) + warm join %.2fs (shuffle bytes %d) = %.2fx speedup\n",
			rep.RebuildSeconds, rep.AppendSeconds, rep.AppendTuplesPerSec, rep.WarmJoinSeconds,
			rep.WarmShuffleBytes, rep.SpeedupVsRebuild)
		fmt.Printf("sustained appends: %d warm queries, mean %.3fs / median %.3fs / max %.3fs\n",
			rep.Sustained.Queries, rep.Sustained.MeanSeconds, rep.Sustained.MedianSeconds, rep.Sustained.MaxSeconds)
		fmt.Printf("drift re-partition %.2fs in background (%d queries served during swap); pairs checked %d identical=%v; report written to %s\n",
			rep.RepartitionSeconds, rep.ServedDuringRepartition, rep.PairsChecked, rep.PairsIdentical, *appendPath)
		return
	}

	if *clusterPath != "" {
		cfg := bench.DefaultClusterConfig()
		if *clusterTuples > 0 {
			cfg.Tuples = *clusterTuples
		}
		if *clusterWorkers > 0 {
			cfg.Workers = *clusterWorkers
		}
		if *clusterChunk > 0 {
			cfg.ChunkSize = *clusterChunk
		}
		if *clusterWindow > 0 {
			cfg.Window = *clusterWindow
		}
		if *clusterDims > 0 {
			cfg.Dims = *clusterDims
		}
		if *clusterEps > 0 {
			cfg.Eps = *clusterEps
		}
		if *clusterComp != "" {
			cfg.Compression = *clusterComp
		}
		if *clusterDecimals != -1 {
			cfg.KeyDecimals = *clusterDecimals
		}
		cfg.Seed = *seed
		f, err := os.Create(*clusterPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *clusterPath, err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Printf("cluster benchmark: %d x %d tuples, %dD, band %g, %d in-process workers...\n",
			cfg.Tuples, cfg.Tuples, cfg.Dims, cfg.Eps, cfg.Workers)
		rep, err := bench.RunCluster(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteClusterJSON(f, rep); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *clusterPath, err)
			os.Exit(1)
		}
		fmt.Printf("serial %.2fs (shuffle %.2fs + join %.2fs), streaming %.2fs (shuffle %.2fs + join %.2fs)\n",
			rep.Serial.WallSeconds, rep.Serial.ShuffleSeconds, rep.Serial.JoinSeconds,
			rep.Streaming.WallSeconds, rep.Streaming.ShuffleSeconds, rep.Streaming.JoinSeconds)
		fmt.Printf("shuffle wire: serial %d RPCs / %.1f MB, streaming-off %d RPCs / %.1f MB, streaming(%s) %d RPCs / %.1f MB\n",
			rep.Serial.ShuffleRPCs, float64(rep.Serial.ShuffleBytes)/(1<<20),
			rep.StreamingOff.ShuffleRPCs, float64(rep.StreamingOff.ShuffleBytes)/(1<<20),
			rep.Compression, rep.Streaming.ShuffleRPCs, float64(rep.Streaming.ShuffleBytes)/(1<<20))
		fmt.Printf("compression %.2fx vs off (raw %.1f MB); pairs checked %d identical=%v\n",
			rep.CompressionRatio, float64(rep.Streaming.ShuffleRawBytes)/(1<<20), rep.PairsChecked, rep.PairsIdentical)
		fmt.Printf("end-to-end speedup %.2fx (shuffle %.2fx, join %.2fx); report written to %s\n",
			rep.SpeedupEndToEnd, rep.SpeedupShuffle, rep.SpeedupJoin, *clusterPath)
		return
	}

	if *scalingPath != "" {
		cfg := bench.DefaultScalingConfig()
		if *scalingTuples > 0 {
			cfg.Tuples = *scalingTuples
		}
		if *scalingDims > 0 {
			cfg.Dims = *scalingDims
		}
		if *scalingWorkers > 0 {
			cfg.Workers = *scalingWorkers
		}
		if *scalingRounds > 0 {
			cfg.Rounds = *scalingRounds
		}
		procs, err := parseProcsList(*scalingProcs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-scaling-procs: %v\n", err)
			os.Exit(2)
		}
		switch {
		case len(procs) == 1:
			cfg.MaxProcs = procs[0] // back-compat: a single value caps the doubling sweep
		case len(procs) > 1:
			cfg.Procs = procs
		}
		cfg.Seed = *seed
		f, err := os.Create(*scalingPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *scalingPath, err)
			os.Exit(1)
		}
		defer f.Close()
		if len(cfg.Procs) > 0 {
			fmt.Printf("scaling sweep: %d x %d tuples, %dD, band %g, procs %v (forced)...\n",
				cfg.Tuples, cfg.Tuples, cfg.Dims, cfg.Eps, cfg.Procs)
		} else {
			cap := cfg.MaxProcs
			if cap <= 0 {
				cap = runtime.NumCPU()
			}
			fmt.Printf("scaling sweep: %d x %d tuples, %dD, band %g, procs 1..%d...\n",
				cfg.Tuples, cfg.Tuples, cfg.Dims, cfg.Eps, cap)
		}
		rep, err := bench.RunScaling(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scaling sweep failed: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteScalingJSON(f, rep); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *scalingPath, err)
			os.Exit(1)
		}
		for _, tier := range rep.Tiers {
			fmt.Printf("%-8s", tier.Tier)
			for _, pt := range tier.Points {
				fmt.Printf("  p=%d %.3fs (%.2fx)", pt.Procs, pt.WallSeconds, pt.Speedup)
			}
			fmt.Println()
		}
		fmt.Printf("report written to %s\n", *scalingPath)
		return
	}

	if *skewPath != "" {
		cfg := bench.DefaultSkewConfig()
		if *skewTuples > 0 {
			cfg.Tuples = *skewTuples
		}
		if *skewMass > 0 {
			cfg.MassFraction = *skewMass
		}
		if *skewWorkers > 0 {
			cfg.Workers = *skewWorkers
		}
		if *skewRounds > 0 {
			cfg.Rounds = *skewRounds
		}
		cfg.MorselRows = *skewMorsel
		procs, err := parseProcsList(*skewProcs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-skew-procs: %v\n", err)
			os.Exit(2)
		}
		cfg.Procs = procs
		cfg.Seed = *seed
		f, err := os.Create(*skewPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *skewPath, err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Printf("skew benchmark: %d x %d tuples, %dD, band %g, %.0f%% point mass, w=%d...\n",
			cfg.Tuples, cfg.Tuples, cfg.Dims, cfg.Eps, 100*cfg.MassFraction, cfg.Workers)
		rep, err := bench.RunSkew(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skew benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteSkewJSON(f, rep); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *skewPath, err)
			os.Exit(1)
		}
		fmt.Printf("straggler ratio %.2f, %d output pairs, pairs identical=%v\n",
			rep.StragglerRatio, rep.Output, rep.PairsIdentical)
		for _, pt := range rep.Points {
			fmt.Printf("p=%d per-partition %.3fs, morsel %.3fs (%.2fx), %d morsels, %d steals\n",
				pt.Procs, pt.PerPartitionSeconds, pt.MorselSeconds, pt.Speedup, pt.Morsels, pt.Steals)
		}
		fmt.Printf("report written to %s\n", *skewPath)
		return
	}

	if *pipelinePath != "" {
		cfg := bench.DefaultPipelineConfig()
		if *pipelineTuples > 0 {
			cfg.Tuples = *pipelineTuples
		}
		cfg.Seed = *seed
		if *workers > 0 {
			cfg.Workers = *workers
		}
		// Create the output file up front so a bad path fails before the
		// (potentially long) benchmark runs.
		f, err := os.Create(*pipelinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *pipelinePath, err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Printf("pipeline benchmark: %d x %d tuples, %dD, band %g, %d workers...\n",
			cfg.Tuples, cfg.Tuples, cfg.Dims, cfg.Eps, cfg.Workers)
		rep, err := bench.RunPipeline(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipeline benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WritePipelineJSON(f, rep); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *pipelinePath, err)
			os.Exit(1)
		}
		fmt.Printf("reference %.2fs (shuffle %.2fs + join %.2fs), parallel %.2fs (shuffle %.2fs + join %.2fs)\n",
			rep.Reference.TotalSeconds, rep.Reference.ShuffleSeconds, rep.Reference.JoinSeconds,
			rep.Optimized.TotalSeconds, rep.Optimized.ShuffleSeconds, rep.Optimized.JoinSeconds)
		fmt.Printf("end-to-end speedup %.2fx (shuffle %.2fx, join %.2fx); report written to %s\n",
			rep.SpeedupEndToEnd, rep.SpeedupShuffle, rep.SpeedupJoin, *pipelinePath)
		return
	}

	if *list || *table == "" {
		fmt.Println("Available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *table == "" && !*list {
			fmt.Println("\nrun with -table <id> or -table all")
		}
		return
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *tuples > 0 {
		cfg.BaseTuples = *tuples
	}
	if *sample > 0 {
		cfg.SampleSize = *sample
	}
	cfg.Seed = *seed

	var selected []bench.Experiment
	if *table == "all" {
		selected = bench.All()
	} else {
		e, ok := bench.ByID(*table)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *table)
			os.Exit(2)
		}
		selected = []bench.Experiment{e}
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *csvPath, err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
	}

	for _, e := range selected {
		tbl, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := bench.Render(os.Stdout, tbl); err != nil {
			fmt.Fprintf(os.Stderr, "rendering %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if csvFile != nil {
			if err := bench.WriteCSV(csvFile, tbl); err != nil {
				fmt.Fprintf(os.Stderr, "exporting %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	}
}
