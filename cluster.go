package bandjoin

import (
	"context"
	"fmt"
	"time"

	"bandjoin/internal/cluster"
	"bandjoin/internal/obs"
)

// Cluster is a connection to a set of band-join workers reachable over RPC.
type Cluster struct {
	coord *cluster.Coordinator
	local *cluster.LocalCluster
}

// ClusterConfig tunes the coordinator's fault-tolerance policy. The zero
// value selects the production defaults documented on every field; see
// DESIGN.md's "Failure model" for the machinery behind the knobs.
type ClusterConfig struct {
	// MinWorkers lets the coordinator start degraded: connecting succeeds as
	// long as this many workers are reachable, and the rest join the pool when
	// the background heartbeat finds them. Zero requires every worker.
	MinWorkers int
	// CallTimeout is the per-attempt deadline of control-plane RPCs (Load,
	// Ping, Seal, Evict, Reset) and of dialing. Zero means 15s; negative
	// disables the deadline.
	CallTimeout time.Duration
	// JoinTimeout is the per-attempt deadline of Join RPCs, which legitimately
	// run long. Zero means 2m; negative disables the deadline.
	JoinTimeout time.Duration
	// MaxRetries is how many times an idempotent RPC is retried after a
	// transport error before recovery escalates to failover. Zero means 3;
	// negative disables retries.
	MaxRetries int
	// RetryBaseDelay and RetryMaxDelay shape the capped exponential backoff
	// between retries (defaults 25ms and 1s). Jitter is deterministic, drawn
	// from a per-worker generator seeded with Seed.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// HeartbeatInterval is the cadence of the background liveness probe that
	// detects silent worker deaths and redials down workers. Zero means 3s;
	// negative disables the heartbeat.
	HeartbeatInterval time.Duration
	// Seed drives the retry jitter.
	Seed int64
}

func (c ClusterConfig) dialOptions() cluster.DialOptions {
	return cluster.DialOptions{
		MinWorkers:        c.MinWorkers,
		CallTimeout:       c.CallTimeout,
		JoinTimeout:       c.JoinTimeout,
		MaxRetries:        c.MaxRetries,
		RetryBaseDelay:    c.RetryBaseDelay,
		RetryMaxDelay:     c.RetryMaxDelay,
		HeartbeatInterval: c.HeartbeatInterval,
		Seed:              c.Seed,
	}
}

// ConnectCluster connects to already-running workers (see cmd/recpartd) at the
// given TCP addresses with the default fault-tolerance policy (every worker
// must be reachable).
func ConnectCluster(addrs []string) (*Cluster, error) {
	return ConnectClusterConfig(addrs, ClusterConfig{})
}

// ConnectClusterConfig connects to already-running workers with an explicit
// fault-tolerance policy.
func ConnectClusterConfig(addrs []string, cfg ClusterConfig) (*Cluster, error) {
	coord, err := cluster.DialConfig(addrs, cfg.dialOptions())
	if err != nil {
		return nil, err
	}
	return &Cluster{coord: coord}, nil
}

// StartLocalCluster starts n in-process workers on loopback ports and connects
// to them. It exercises the real RPC data path without separate processes.
func StartLocalCluster(n int) (*Cluster, error) {
	lc, err := cluster.StartLocal(n)
	if err != nil {
		return nil, err
	}
	coord, err := cluster.Dial(lc.Addrs())
	if err != nil {
		lc.Stop()
		return nil, err
	}
	return &Cluster{coord: coord, local: lc}, nil
}

// Workers returns the number of configured workers (live or not).
func (c *Cluster) Workers() int { return c.coord.Workers() }

// LiveWorkers returns the number of workers currently considered healthy.
func (c *Cluster) LiveWorkers() int { return c.coord.LiveWorkers() }

// Metrics returns the coordinator-side metrics registry (shuffle totals,
// failover counters, worker health transitions), servable over HTTP together
// with an engine's registry via obs.Serve.
func (c *Cluster) Metrics() *obs.Registry { return c.coord.Metrics() }

// ClusterStats is the cluster-wide observability snapshot Stats collects.
type ClusterStats = cluster.ClusterStats

// Stats collects every worker's counters (over the Stats RPC) plus the
// coordinator-side aggregates. Unreachable workers are reported with their
// error rather than omitted.
func (c *Cluster) Stats(ctx context.Context) *ClusterStats { return c.coord.Stats(ctx) }

// Close disconnects from the workers and, for a local cluster, shuts them
// down.
func (c *Cluster) Close() {
	if c.coord != nil {
		c.coord.Close()
	}
	if c.local != nil {
		c.local.Stop()
	}
}

// Join runs the band-join of s and t across the cluster's workers. Like the
// in-process Join, it is a throwaway Engine serving one query; hold an Engine
// (Cluster.NewEngine) to amortize sampling, optimization, and the shuffle
// across repeated queries.
func (c *Cluster) Join(s, t *Relation, band Band, opts Options) (*Result, error) {
	if s == nil || t == nil {
		return nil, fmt.Errorf("bandjoin: nil input relation")
	}
	e := c.NewEngine(EngineOptions{DisableRetention: true})
	defer e.Close()
	if err := e.Register("s", s); err != nil {
		return nil, err
	}
	if err := e.Register("t", t); err != nil {
		return nil, err
	}
	return e.Join(context.Background(), "s", "t", band, opts)
}
