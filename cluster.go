package bandjoin

import (
	"context"
	"fmt"

	"bandjoin/internal/cluster"
)

// Cluster is a connection to a set of band-join workers reachable over RPC.
type Cluster struct {
	coord *cluster.Coordinator
	local *cluster.LocalCluster
}

// ConnectCluster connects to already-running workers (see cmd/recpartd) at the
// given TCP addresses.
func ConnectCluster(addrs []string) (*Cluster, error) {
	coord, err := cluster.Dial(addrs)
	if err != nil {
		return nil, err
	}
	return &Cluster{coord: coord}, nil
}

// StartLocalCluster starts n in-process workers on loopback ports and connects
// to them. It exercises the real RPC data path without separate processes.
func StartLocalCluster(n int) (*Cluster, error) {
	lc, err := cluster.StartLocal(n)
	if err != nil {
		return nil, err
	}
	coord, err := cluster.Dial(lc.Addrs())
	if err != nil {
		lc.Stop()
		return nil, err
	}
	return &Cluster{coord: coord, local: lc}, nil
}

// Workers returns the number of connected workers.
func (c *Cluster) Workers() int { return c.coord.Workers() }

// Close disconnects from the workers and, for a local cluster, shuts them
// down.
func (c *Cluster) Close() {
	if c.coord != nil {
		c.coord.Close()
	}
	if c.local != nil {
		c.local.Stop()
	}
}

// Join runs the band-join of s and t across the cluster's workers. Like the
// in-process Join, it is a throwaway Engine serving one query; hold an Engine
// (Cluster.NewEngine) to amortize sampling, optimization, and the shuffle
// across repeated queries.
func (c *Cluster) Join(s, t *Relation, band Band, opts Options) (*Result, error) {
	if s == nil || t == nil {
		return nil, fmt.Errorf("bandjoin: nil input relation")
	}
	e := c.NewEngine(EngineOptions{DisableRetention: true})
	defer e.Close()
	if err := e.Register("s", s); err != nil {
		return nil, err
	}
	if err := e.Register("t", t); err != nil {
		return nil, err
	}
	return e.Join(context.Background(), "s", "t", band, opts)
}
