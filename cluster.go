package bandjoin

import (
	"fmt"

	"bandjoin/internal/cluster"
	"bandjoin/internal/costmodel"
	"bandjoin/internal/sample"
)

// Cluster is a connection to a set of band-join workers reachable over RPC.
type Cluster struct {
	coord *cluster.Coordinator
	local *cluster.LocalCluster
}

// ConnectCluster connects to already-running workers (see cmd/recpartd) at the
// given TCP addresses.
func ConnectCluster(addrs []string) (*Cluster, error) {
	coord, err := cluster.Dial(addrs)
	if err != nil {
		return nil, err
	}
	return &Cluster{coord: coord}, nil
}

// StartLocalCluster starts n in-process workers on loopback ports and connects
// to them. It exercises the real RPC data path without separate processes.
func StartLocalCluster(n int) (*Cluster, error) {
	lc, err := cluster.StartLocal(n)
	if err != nil {
		return nil, err
	}
	coord, err := cluster.Dial(lc.Addrs())
	if err != nil {
		lc.Stop()
		return nil, err
	}
	return &Cluster{coord: coord, local: lc}, nil
}

// Workers returns the number of connected workers.
func (c *Cluster) Workers() int { return c.coord.Workers() }

// Close disconnects from the workers and, for a local cluster, shuts them
// down.
func (c *Cluster) Close() {
	if c.coord != nil {
		c.coord.Close()
	}
	if c.local != nil {
		c.local.Stop()
	}
}

// Join runs the band-join of s and t across the cluster's workers.
func (c *Cluster) Join(s, t *Relation, band Band, opts Options) (*Result, error) {
	if s == nil || t == nil {
		return nil, fmt.Errorf("bandjoin: nil input relation")
	}
	if err := band.Validate(); err != nil {
		return nil, err
	}
	pt := opts.Partitioner
	if pt == nil {
		pt = RecPart()
	}
	copts := cluster.Options{
		Algorithm:       opts.LocalAlgorithm,
		Model:           opts.Model,
		CollectPairs:    opts.CollectPairs,
		Seed:            opts.Seed,
		ChunkSize:       opts.ClusterChunkSize,
		Window:          opts.ClusterWindow,
		JoinParallelism: opts.ClusterJoinParallelism,
		Serial:          opts.ClusterSerial,
		Sampling: sample.Options{
			InputSampleSize:  opts.InputSampleSize,
			OutputSampleSize: opts.OutputSampleSize,
			Seed:             opts.Seed + 1,
		},
	}
	if (copts.Model == costmodel.Model{}) {
		copts.Model = costmodel.Default()
	}
	if copts.Sampling.InputSampleSize == 0 {
		copts.Sampling = sample.DefaultOptions()
		copts.Sampling.Seed = opts.Seed + 1
	}
	return c.coord.Run(pt, s, t, band, copts)
}
